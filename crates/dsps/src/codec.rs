//! The wire codec: hand-written serialization for tuples and the two
//! message formats of Fig 9.
//!
//! Owning the codec matters for this reproduction: the paper's central
//! observation is that *per-destination* serialization dominates upstream
//! CPU, and worker-oriented communication fixes it by serializing the data
//! item once and packing destination ids into the header. The two formats:
//!
//! - [`InstanceMessage`] (Fig 9a, Storm): `destId | dataItem` — one message
//!   per destination instance, data item serialized every time.
//! - [`WorkerMessage`] (Fig 9b, Whale): `dstIds[] | dataItem` — one message
//!   per destination *worker*, data item serialized once.

use crate::task::TaskId;
use crate::tuple::{Tuple, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Errors from decoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// Unknown type tag.
    BadTag(u8),
    /// String payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadTag(t) => write!(f, "unknown type tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string value"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BYTES: u8 = 4;
const TAG_BOOL: u8 = 5;

fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::I64(x) => {
            buf.put_u8(TAG_I64);
            buf.put_i64_le(*x);
        }
        Value::F64(x) => {
            buf.put_u8(TAG_F64);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn decode_value(buf: &mut impl Buf) -> Result<Value, DecodeError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    match tag {
        TAG_I64 => {
            need(buf, 8)?;
            Ok(Value::I64(buf.get_i64_le()))
        }
        TAG_F64 => {
            need(buf, 8)?;
            Ok(Value::F64(buf.get_f64_le()))
        }
        TAG_STR => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            let s = String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?;
            Ok(Value::Str(Arc::from(s.as_str())))
        }
        TAG_BYTES => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            Ok(Value::Bytes(Arc::from(bytes.as_slice())))
        }
        TAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Serialize a tuple into `buf` (the "data item" of the message formats).
/// Taking the destination buffer lets callers route every codec
/// allocation through a [`crate::pool::BufferPool`] scratch buffer.
pub fn encode_tuple_into(buf: &mut BytesMut, t: &Tuple) {
    buf.reserve(t.payload_bytes());
    buf.put_u64_le(t.id);
    buf.put_u16_le(t.values.len() as u16);
    for v in &t.values {
        encode_value(buf, v);
    }
}

/// Serialize a tuple into a fresh buffer. Hot paths should prefer
/// [`encode_tuple_into`] with a pooled buffer.
pub fn encode_tuple(t: &Tuple) -> Bytes {
    let mut buf = BytesMut::with_capacity(t.payload_bytes());
    encode_tuple_into(&mut buf, t);
    buf.freeze()
}

/// Deserialize a tuple.
pub fn decode_tuple(buf: &mut impl Buf) -> Result<Tuple, DecodeError> {
    need(buf, 10)?;
    let id = buf.get_u64_le();
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple { id, values })
}

/// Fig 9a: Storm's instance-oriented message — one destination id and a
/// freshly serialized copy of the data item.
#[derive(Clone, PartialEq, Debug)]
pub struct InstanceMessage {
    /// Emitting task.
    pub src: TaskId,
    /// The single destination task.
    pub dst: TaskId,
    /// The data item.
    pub tuple: Tuple,
}

impl InstanceMessage {
    /// Serialize `src | dst | dataItem` into `buf` without materializing
    /// an owned message — the hot path borrows the shared decoded tuple
    /// instead of cloning it per destination.
    pub fn encode_parts_into(src: TaskId, dst: TaskId, tuple: &Tuple, buf: &mut BytesMut) {
        buf.reserve(8 + tuple.payload_bytes());
        buf.put_u32_le(src.0);
        buf.put_u32_le(dst.0);
        encode_tuple_into(buf, tuple);
    }

    /// Serialize `src | dst | dataItem` into `buf` (pooled-buffer path).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        Self::encode_parts_into(self.src, self.dst, &self.tuple, buf);
    }

    /// Serialize: `src | dst | dataItem`.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_bytes());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Deserialize.
    pub fn decode(mut buf: impl Buf) -> Result<Self, DecodeError> {
        need(&buf, 8)?;
        let src = TaskId(buf.get_u32_le());
        let dst = TaskId(buf.get_u32_le());
        let tuple = decode_tuple(&mut buf)?;
        Ok(InstanceMessage { src, dst, tuple })
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + self.tuple.payload_bytes()
    }
}

/// Fig 9b: Whale's worker-oriented `BatchTuple`/`WorkerMessage` — the ids
/// of all destination instances hosted on the same worker, plus the data
/// item serialized exactly once.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkerMessage {
    /// Emitting task.
    pub src: TaskId,
    /// All destination tasks on the receiving worker.
    pub dst_ids: Vec<TaskId>,
    /// The data item.
    pub tuple: Tuple,
}

impl WorkerMessage {
    /// Serialize `src | n | dstIds[n] | dataItem` into `buf`
    /// (pooled-buffer path).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.wire_bytes());
        buf.put_u32_le(self.src.0);
        buf.put_u32_le(self.dst_ids.len() as u32);
        for id in &self.dst_ids {
            buf.put_u32_le(id.0);
        }
        encode_tuple_into(buf, &self.tuple);
    }

    /// Serialize: `src | n | dstIds[n] | dataItem`.
    pub fn encode(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity(8 + 4 * self.dst_ids.len() + self.tuple.payload_bytes());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Serialize the worker header around an already-encoded data item
    /// into `buf` — the serialize-once fan-out path: the data item is
    /// encoded one time, then only the per-worker header differs.
    pub fn encode_with_item_into(src: TaskId, dst_ids: &[TaskId], item: &[u8], buf: &mut BytesMut) {
        buf.reserve(8 + 4 * dst_ids.len() + item.len());
        buf.put_u32_le(src.0);
        buf.put_u32_le(dst_ids.len() as u32);
        for id in dst_ids {
            buf.put_u32_le(id.0);
        }
        buf.put_slice(item);
    }

    /// Serialize around an already-encoded data item (the zero-copy path:
    /// the data item is serialized once and reused per worker).
    pub fn encode_with_item(src: TaskId, dst_ids: &[TaskId], item: &Bytes) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + 4 * dst_ids.len() + item.len());
        Self::encode_with_item_into(src, dst_ids, item, &mut buf);
        buf.freeze()
    }

    /// Deserialize.
    pub fn decode(mut buf: impl Buf) -> Result<Self, DecodeError> {
        need(&buf, 8)?;
        let src = TaskId(buf.get_u32_le());
        let n = buf.get_u32_le() as usize;
        need(&buf, 4 * n)?;
        let mut dst_ids = Vec::with_capacity(n);
        for _ in 0..n {
            dst_ids.push(TaskId(buf.get_u32_le()));
        }
        let tuple = decode_tuple(&mut buf)?;
        Ok(WorkerMessage {
            src,
            dst_ids,
            tuple,
        })
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + 4 * self.dst_ids.len() + self.tuple.payload_bytes()
    }
}

/// The fixed-offset header of a relay frame traveling the multicast tree
/// (after the 1-byte fabric tag): `origin u32 | epoch u32 | component u32 |
/// tracked u64`, followed by the encoded data item.
///
/// The header is deliberately *child-invariant*: the receiver's tree-node
/// index is NOT carried. The node→worker mapping skips the origin and is
/// a bijection, so each relay derives its own node index from its worker
/// id instead — which means the exact received bytes can be forwarded to
/// every child as one shared buffer: no decode, no re-encode, no
/// per-child header patching on the forward path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelayHeader {
    /// Worker id of the broadcast's source worker (tree root).
    pub origin: u32,
    /// Tree-structure epoch the frame was sent on; frames from retired
    /// epochs are dropped, never delivered.
    pub epoch: u32,
    /// Destination component of the broadcast.
    pub component: u32,
    /// XOR-acker ledger key (`attempt << 48 | root`), or 0 when the
    /// broadcast is untracked. Anchors are derived per destination, never
    /// carried.
    pub tracked: u64,
}

impl RelayHeader {
    /// Encoded size in bytes (excluding the fabric tag byte).
    pub const WIRE_BYTES: usize = 20;

    /// Serialize into `buf` at its current position.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(Self::WIRE_BYTES);
        buf.put_u32_le(self.origin);
        buf.put_u32_le(self.epoch);
        buf.put_u32_le(self.component);
        buf.put_u64_le(self.tracked);
    }

    /// Deserialize from `buf`, consuming exactly [`Self::WIRE_BYTES`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(&*buf, Self::WIRE_BYTES)?;
        Ok(RelayHeader {
            origin: buf.get_u32_le(),
            epoch: buf.get_u32_le(),
            component: buf.get_u32_le(),
            tracked: buf.get_u64_le(),
        })
    }
}

/// An `AddressedTuple`: what the dispatcher hands each local executor
/// after deserializing a [`WorkerMessage`] (§4).
#[derive(Clone, PartialEq, Debug)]
pub struct AddressedTuple {
    /// The destination task on this worker.
    pub dst: TaskId,
    /// The data item (shared — one deserialization, many destinations).
    pub tuple: Arc<Tuple>,
}

/// Expand a decoded [`WorkerMessage`] into per-task [`AddressedTuple`]s,
/// deserializing the data item exactly once.
pub fn dispatch_worker_message(msg: WorkerMessage) -> Vec<AddressedTuple> {
    let shared = Arc::new(msg.tuple);
    msg.dst_ids
        .iter()
        .map(|&dst| AddressedTuple {
            dst,
            tuple: Arc::clone(&shared),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> Tuple {
        Tuple::with_id(
            99,
            vec![
                Value::I64(-7),
                Value::F64(3.25),
                Value::str("driver-42"),
                Value::Bytes(Arc::from(&[1u8, 2, 3][..])),
                Value::Bool(true),
            ],
        )
    }

    #[test]
    fn tuple_roundtrip() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        let mut buf = bytes.clone();
        let back = decode_tuple(&mut buf).unwrap();
        assert_eq!(back, t);
        assert_eq!(buf.remaining(), 0, "decoder must consume everything");
    }

    #[test]
    fn encoded_size_matches_accounting() {
        let t = sample_tuple();
        assert_eq!(encode_tuple(&t).len(), t.payload_bytes());
    }

    #[test]
    fn instance_message_roundtrip() {
        let m = InstanceMessage {
            src: TaskId(3),
            dst: TaskId(77),
            tuple: sample_tuple(),
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_bytes());
        let back = InstanceMessage::decode(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn worker_message_roundtrip() {
        let m = WorkerMessage {
            src: TaskId(3),
            dst_ids: vec![TaskId(10), TaskId(11), TaskId(12)],
            tuple: sample_tuple(),
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_bytes());
        let back = WorkerMessage::decode(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn encode_with_item_equals_full_encode() {
        let t = sample_tuple();
        let item = encode_tuple(&t);
        let dsts = vec![TaskId(1), TaskId(2)];
        let a = WorkerMessage {
            src: TaskId(0),
            dst_ids: dsts.clone(),
            tuple: t,
        }
        .encode();
        let b = WorkerMessage::encode_with_item(TaskId(0), &dsts, &item);
        assert_eq!(a, b);
    }

    /// Byte-accounting drift guard: `wire_bytes()` is what the cost layer
    /// and the traffic counters charge, so it must stay exact under every
    /// encoding — batched, single-item, and empty-destination — and under
    /// both the direct and the shared-item (serialize-once) paths.
    #[test]
    fn wire_bytes_equals_encoded_len_for_all_shapes() {
        let shapes: Vec<Vec<TaskId>> = vec![
            (0..16).map(TaskId).collect(), // batched fan-out
            vec![TaskId(7)],               // single destination
            vec![],                        // empty destination set
        ];
        for dst_ids in shapes {
            let m = WorkerMessage {
                src: TaskId(3),
                dst_ids: dst_ids.clone(),
                tuple: sample_tuple(),
            };
            assert_eq!(
                m.wire_bytes(),
                m.encode().len(),
                "direct encode, {} destinations",
                dst_ids.len()
            );
            let item = encode_tuple(&m.tuple);
            assert_eq!(
                m.wire_bytes(),
                WorkerMessage::encode_with_item(m.src, &m.dst_ids, &item).len(),
                "shared-item encode, {} destinations",
                dst_ids.len()
            );
        }
        // The empty tuple bounds the other direction.
        let empty = WorkerMessage {
            src: TaskId(0),
            dst_ids: vec![],
            tuple: Tuple::new(vec![]),
        };
        assert_eq!(empty.wire_bytes(), empty.encode().len());
        let im = InstanceMessage {
            src: TaskId(1),
            dst: TaskId(2),
            tuple: sample_tuple(),
        };
        assert_eq!(im.wire_bytes(), im.encode().len());
    }

    #[test]
    fn pooled_encode_into_matches_fresh_encode() {
        let pool = crate::pool::BufferPool::default();
        let m = WorkerMessage {
            src: TaskId(3),
            dst_ids: vec![TaskId(10), TaskId(11)],
            tuple: sample_tuple(),
        };
        for round in 0..3 {
            let mut buf = pool.acquire();
            m.encode_into(&mut buf);
            assert_eq!(&buf[..], &m.encode()[..], "round {round}");
        }
        assert!(pool.hits() >= 2, "encode scratch buffers are reused");
    }

    #[test]
    fn worker_message_smaller_than_n_instance_messages() {
        let t = sample_tuple();
        let n = 16;
        let dsts: Vec<TaskId> = (0..n).map(TaskId).collect();
        let wm = WorkerMessage {
            src: TaskId(0),
            dst_ids: dsts,
            tuple: t.clone(),
        };
        let im_total: usize = (0..n)
            .map(|i| {
                InstanceMessage {
                    src: TaskId(0),
                    dst: TaskId(i),
                    tuple: t.clone(),
                }
                .wire_bytes()
            })
            .sum();
        assert!(
            wm.wire_bytes() * 5 < im_total,
            "worker message must amortize the data item"
        );
    }

    #[test]
    fn truncated_inputs_error() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        for cut in [0, 1, 5, 9, bytes.len() - 1] {
            let mut buf = bytes.slice(..cut);
            assert_eq!(
                decode_tuple(&mut buf),
                Err(DecodeError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(1);
        raw.put_u8(200); // bad tag
        let mut buf = raw.freeze();
        assert_eq!(decode_tuple(&mut buf), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(1);
        raw.put_u8(TAG_STR);
        raw.put_u32_le(2);
        raw.put_slice(&[0xFF, 0xFE]);
        let mut buf = raw.freeze();
        assert_eq!(decode_tuple(&mut buf), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn dispatch_shares_one_deserialization() {
        let m = WorkerMessage {
            src: TaskId(0),
            dst_ids: vec![TaskId(5), TaskId(6)],
            tuple: sample_tuple(),
        };
        let addressed = dispatch_worker_message(m);
        assert_eq!(addressed.len(), 2);
        assert_eq!(addressed[0].dst, TaskId(5));
        assert_eq!(addressed[1].dst, TaskId(6));
        assert!(Arc::ptr_eq(&addressed[0].tuple, &addressed[1].tuple));
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new(vec![]);
        let mut buf = encode_tuple(&t);
        assert_eq!(decode_tuple(&mut buf).unwrap(), t);
    }

    #[test]
    fn empty_string_and_bytes() {
        let t = Tuple::new(vec![Value::str(""), Value::Bytes(Arc::from(&[][..]))]);
        let mut buf = encode_tuple(&t);
        assert_eq!(decode_tuple(&mut buf).unwrap(), t);
    }

    #[test]
    fn relay_header_roundtrip_at_fixed_offsets() {
        let h = RelayHeader {
            origin: 3,
            epoch: 7,
            component: 2,
            tracked: (5u64 << 48) | 0xABCD,
        };
        let mut buf = BytesMut::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), RelayHeader::WIRE_BYTES);
        // Fixed offsets: origin@0, epoch@4, component@8, tracked@12.
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 7);
        assert_eq!(u32::from_le_bytes(buf[8..12].try_into().unwrap()), 2);
        let mut rd = buf.freeze();
        assert_eq!(RelayHeader::decode(&mut rd).unwrap(), h);
        assert!(!rd.has_remaining());
    }

    #[test]
    fn relay_header_truncated_is_an_error() {
        let mut short = Bytes::copy_from_slice(&[0u8; RelayHeader::WIRE_BYTES - 1]);
        assert_eq!(
            RelayHeader::decode(&mut short),
            Err(DecodeError::Truncated)
        );
    }
}
