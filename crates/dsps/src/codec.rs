//! The wire codec: hand-written serialization for tuples and the two
//! message formats of Fig 9, plus the lazy decode layer over received
//! wire buffers.
//!
//! Owning the codec matters for this reproduction: the paper's central
//! observation is that *per-destination* serialization dominates upstream
//! CPU, and worker-oriented communication fixes it by serializing the data
//! item once and packing destination ids into the header. The two formats:
//!
//! - [`InstanceMessage`] (Fig 9a, Storm): `destId | dataItem` — one message
//!   per destination instance, data item serialized every time.
//! - [`WorkerMessage`] (Fig 9b, Whale): `dstIds[] | dataItem` — one message
//!   per destination *worker*, data item serialized once.
//!
//! The receive side mirrors the send side's zero-copy discipline with
//! borrowed views: [`TupleView`] / [`WorkerMessageView`] /
//! [`InstanceMessageView`] validate framing once (tags and lengths;
//! UTF-8 is deferred to per-field access) and then resolve fields by
//! offset straight against the wire bytes — no `Vec<Value>`, no
//! per-field allocation. [`LazyTuple`] carries a validated view across
//! threads anchored to the shared `Arc<[u8]>` receive buffer and
//! materializes an owned [`Tuple`] at most once, on first touch.
//! [`WireCodec`] makes the tuple format pluggable so formats can be
//! priced head-to-head ([`WhaleCodec`] is the default).

use crate::task::TaskId;
use crate::tuple::{Tuple, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::{Arc, OnceLock};

/// Errors from decoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// Unknown type tag.
    BadTag(u8),
    /// String payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::BadTag(t) => write!(f, "unknown type tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string value"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BYTES: u8 = 4;
const TAG_BOOL: u8 = 5;

fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::I64(x) => {
            buf.put_u8(TAG_I64);
            buf.put_i64_le(*x);
        }
        Value::F64(x) => {
            buf.put_u8(TAG_F64);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn decode_value(buf: &mut impl Buf) -> Result<Value, DecodeError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    match tag {
        TAG_I64 => {
            need(buf, 8)?;
            Ok(Value::I64(buf.get_i64_le()))
        }
        TAG_F64 => {
            need(buf, 8)?;
            Ok(Value::F64(buf.get_f64_le()))
        }
        TAG_STR => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            // Validate on the borrowed slice and copy once, straight into
            // the Arc — no intermediate Vec/String round-trip.
            let s = std::str::from_utf8(&buf.chunk()[..len]).map_err(|_| DecodeError::BadUtf8)?;
            let v = Value::Str(Arc::from(s));
            buf.advance(len);
            Ok(v)
        }
        TAG_BYTES => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let v = Value::Bytes(Arc::from(&buf.chunk()[..len]));
            buf.advance(len);
            Ok(v)
        }
        TAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Serialize a tuple into `buf` (the "data item" of the message formats).
/// Taking the destination buffer lets callers route every codec
/// allocation through a [`crate::pool::BufferPool`] scratch buffer.
pub fn encode_tuple_into(buf: &mut BytesMut, t: &Tuple) {
    buf.reserve(t.payload_bytes());
    buf.put_u64_le(t.id);
    buf.put_u16_le(t.values.len() as u16);
    for v in &t.values {
        encode_value(buf, v);
    }
}

/// Serialize a tuple into a fresh buffer. Hot paths should prefer
/// [`encode_tuple_into`] with a pooled buffer.
pub fn encode_tuple(t: &Tuple) -> Bytes {
    let mut buf = BytesMut::with_capacity(t.payload_bytes());
    encode_tuple_into(&mut buf, t);
    buf.freeze()
}

/// Deserialize a tuple.
pub fn decode_tuple(buf: &mut impl Buf) -> Result<Tuple, DecodeError> {
    need(buf, 10)?;
    let id = buf.get_u64_le();
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple { id, values })
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Validate one encoded value's framing (tag known, payload in bounds —
/// UTF-8 deliberately not checked) and return the offset just past it.
fn skip_value(buf: &[u8], at: usize) -> Result<usize, DecodeError> {
    let tag = *buf.get(at).ok_or(DecodeError::Truncated)?;
    let end = match tag {
        TAG_I64 | TAG_F64 => at + 9,
        TAG_BOOL => at + 2,
        TAG_STR | TAG_BYTES => {
            if buf.len() < at + 5 {
                return Err(DecodeError::Truncated);
            }
            at + 5 + read_u32(buf, at + 1) as usize
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    if end > buf.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(end)
}

/// One field read lazily from the wire: scalars are decoded in place,
/// strings and byte blobs *borrow* the wire buffer. UTF-8 is validated
/// here, at access time — framing validation upstream skipped it.
/// [`ValueView::to_owned`] is the only point that allocates, and it
/// copies the payload exactly once.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ValueView<'a> {
    /// A 64-bit signed integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A string slice borrowed from the wire buffer.
    Str(&'a str),
    /// A byte slice borrowed from the wire buffer.
    Bytes(&'a [u8]),
    /// A boolean.
    Bool(bool),
}

impl<'a> ValueView<'a> {
    /// Materialize an owned [`Value`] (one copy for `Str`/`Bytes`).
    pub fn to_owned(&self) -> Value {
        match self {
            ValueView::I64(x) => Value::I64(*x),
            ValueView::F64(x) => Value::F64(*x),
            ValueView::Str(s) => Value::Str(Arc::from(*s)),
            ValueView::Bytes(b) => Value::Bytes(Arc::from(*b)),
            ValueView::Bool(b) => Value::Bool(*b),
        }
    }

    /// The integer, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ValueView::I64(x) => Some(*x),
            _ => None,
        }
    }

    /// The float, if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValueView::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueView::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The byte slice, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&'a [u8]> {
        match self {
            ValueView::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ValueView::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl<'a> From<&'a Value> for ValueView<'a> {
    fn from(v: &'a Value) -> Self {
        match v {
            Value::I64(x) => ValueView::I64(*x),
            Value::F64(x) => ValueView::F64(*x),
            Value::Str(s) => ValueView::Str(s),
            Value::Bytes(b) => ValueView::Bytes(b),
            Value::Bool(b) => ValueView::Bool(*b),
        }
    }
}

/// Field offsets of the first `OFFSET_TABLE` values are cached inline at
/// parse time; deeper fields (rare — tuples here are narrow) are found
/// by walking forward from the last cached offset. Either way field
/// access never allocates.
const OFFSET_TABLE: usize = 16;

/// A borrowed, lazily-decoded tuple over its exact wire bytes.
///
/// [`TupleView::parse`] walks the encoding once, checking every tag and
/// length (so later offset arithmetic can't over-read) while *deferring*
/// UTF-8 validation to the field access that actually touches a string.
/// Field access resolves by offset against the borrowed buffer;
/// materialization ([`TupleView::to_tuple`]) is explicit.
#[derive(Clone, Copy, Debug)]
pub struct TupleView<'a> {
    /// Exactly the tuple's wire bytes: `id u64 | arity u16 | values…`.
    bytes: &'a [u8],
    id: u64,
    arity: u16,
    /// Byte offsets (into `bytes`) of the first [`OFFSET_TABLE`] values.
    offsets: [u32; OFFSET_TABLE],
}

impl<'a> TupleView<'a> {
    /// Validate framing at the front of `buf` and build the view.
    /// Trailing bytes past the tuple are ignored (callers embedding a
    /// tuple mid-frame use [`TupleView::wire_len`] to advance).
    pub fn parse(buf: &'a [u8]) -> Result<Self, DecodeError> {
        if buf.len() < 10 {
            return Err(DecodeError::Truncated);
        }
        let id = read_u64(buf, 0);
        let arity = u16::from_le_bytes(buf[8..10].try_into().unwrap());
        let mut offsets = [0u32; OFFSET_TABLE];
        let mut at = 10usize;
        for i in 0..arity as usize {
            if let Some(slot) = offsets.get_mut(i) {
                *slot = at as u32;
            }
            at = skip_value(buf, at)?;
        }
        Ok(TupleView {
            bytes: &buf[..at],
            id,
            arity,
            offsets,
        })
    }

    /// The tuple id (header field, free to read).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.arity as usize
    }

    /// Encoded size in bytes — what a decoder consumes.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// The exact wire bytes the view covers.
    pub fn wire_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Byte offset of field `i` within the wire bytes. Framing was
    /// validated at parse, so the walk past the offset table can't fail.
    fn offset_of(&self, i: usize) -> usize {
        if i < OFFSET_TABLE {
            return self.offsets[i] as usize;
        }
        let mut at = self.offsets[OFFSET_TABLE - 1] as usize;
        for _ in OFFSET_TABLE - 1..i {
            at = skip_value(self.bytes, at).expect("validated at parse");
        }
        at
    }

    /// Read field `i` in place. `None` past the arity; `Err(BadUtf8)`
    /// surfaces here for a string field whose (deferred) validation fails.
    pub fn field(&self, i: usize) -> Option<Result<ValueView<'a>, DecodeError>> {
        if i >= self.arity as usize {
            return None;
        }
        let at = self.offset_of(i);
        let b = self.bytes;
        Some(match b[at] {
            TAG_I64 => Ok(ValueView::I64(i64::from_le_bytes(
                b[at + 1..at + 9].try_into().unwrap(),
            ))),
            TAG_F64 => Ok(ValueView::F64(f64::from_le_bytes(
                b[at + 1..at + 9].try_into().unwrap(),
            ))),
            TAG_STR => {
                let len = read_u32(b, at + 1) as usize;
                match std::str::from_utf8(&b[at + 5..at + 5 + len]) {
                    Ok(s) => Ok(ValueView::Str(s)),
                    Err(_) => Err(DecodeError::BadUtf8),
                }
            }
            TAG_BYTES => {
                let len = read_u32(b, at + 1) as usize;
                Ok(ValueView::Bytes(&b[at + 5..at + 5 + len]))
            }
            TAG_BOOL => Ok(ValueView::Bool(b[at + 1] != 0)),
            _ => unreachable!("tag validated at parse"),
        })
    }

    /// Iterate all fields in order.
    pub fn fields(&self) -> impl Iterator<Item = Result<ValueView<'a>, DecodeError>> + '_ {
        (0..self.arity()).map(|i| self.field(i).expect("i < arity"))
    }

    /// Materialize an owned [`Tuple`] — equivalent to [`decode_tuple`]
    /// over the same bytes. This is the only allocating path.
    pub fn to_tuple(&self) -> Result<Tuple, DecodeError> {
        let mut values = Vec::with_capacity(self.arity());
        for f in self.fields() {
            values.push(f?.to_owned());
        }
        Ok(Tuple {
            id: self.id,
            values,
        })
    }
}

/// Borrowed view of a [`WorkerMessage`]: header fields resolve by fixed
/// offset, destination ids read straight from the wire, and the data
/// item stays a lazy [`TupleView`].
#[derive(Clone, Copy, Debug)]
pub struct WorkerMessageView<'a> {
    src: TaskId,
    /// The raw `dstIds[n]` region (4 bytes per id, little-endian).
    ids: &'a [u8],
    tuple: TupleView<'a>,
}

impl<'a> WorkerMessageView<'a> {
    /// Validate framing over `src | n | dstIds[n] | dataItem`.
    pub fn parse(buf: &'a [u8]) -> Result<Self, DecodeError> {
        if buf.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        let src = TaskId(read_u32(buf, 0));
        let n = read_u32(buf, 4) as usize;
        let ids_end = 8 + 4 * n;
        if buf.len() < ids_end {
            return Err(DecodeError::Truncated);
        }
        let tuple = TupleView::parse(&buf[ids_end..])?;
        Ok(WorkerMessageView {
            src,
            ids: &buf[8..ids_end],
            tuple,
        })
    }

    /// The emitting task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// Number of destination tasks.
    pub fn dst_len(&self) -> usize {
        self.ids.len() / 4
    }

    /// Destination `i`, read at offset from the wire.
    pub fn dst(&self, i: usize) -> Option<TaskId> {
        if i >= self.dst_len() {
            return None;
        }
        Some(TaskId(read_u32(self.ids, 4 * i)))
    }

    /// All destination ids in wire order.
    pub fn dst_ids(&self) -> impl Iterator<Item = TaskId> + 'a {
        self.ids
            .chunks_exact(4)
            .map(|c| TaskId(u32::from_le_bytes(c.try_into().unwrap())))
    }

    /// The data item, still lazy.
    pub fn tuple(&self) -> &TupleView<'a> {
        &self.tuple
    }

    /// Materialize the owned message — equivalent to
    /// [`WorkerMessage::decode`] over the same bytes.
    pub fn to_owned(&self) -> Result<WorkerMessage, DecodeError> {
        Ok(WorkerMessage {
            src: self.src,
            dst_ids: self.dst_ids().collect(),
            tuple: self.tuple.to_tuple()?,
        })
    }
}

/// Borrowed view of an [`InstanceMessage`]: `src | dst | dataItem`.
#[derive(Clone, Copy, Debug)]
pub struct InstanceMessageView<'a> {
    src: TaskId,
    dst: TaskId,
    tuple: TupleView<'a>,
}

impl<'a> InstanceMessageView<'a> {
    /// Validate framing over `src | dst | dataItem`.
    pub fn parse(buf: &'a [u8]) -> Result<Self, DecodeError> {
        if buf.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        Ok(InstanceMessageView {
            src: TaskId(read_u32(buf, 0)),
            dst: TaskId(read_u32(buf, 4)),
            tuple: TupleView::parse(&buf[8..])?,
        })
    }

    /// The emitting task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// The destination task.
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// The data item, still lazy.
    pub fn tuple(&self) -> &TupleView<'a> {
        &self.tuple
    }

    /// Materialize the owned message — equivalent to
    /// [`InstanceMessage::decode`] over the same bytes.
    pub fn to_owned(&self) -> Result<InstanceMessage, DecodeError> {
        Ok(InstanceMessage {
            src: self.src,
            dst: self.dst,
            tuple: self.tuple.to_tuple()?,
        })
    }
}

/// A tuple as executors receive it: either owned, or a framing-validated
/// lazy region of the shared `Arc<[u8]>` receive buffer.
///
/// Cloning shares (one handle per local destination); field access never
/// allocates; [`LazyTuple::materialize`] decodes an owned [`Tuple`] at
/// most once per worker and memoizes it, so a fan-out of local executors
/// that all call it still pays one decode — and executors that only read
/// a field or two never pay it at all.
#[derive(Clone, Debug)]
pub struct LazyTuple(LazyRepr);

#[derive(Clone, Debug)]
enum LazyRepr {
    Owned(Arc<Tuple>),
    Wire(Arc<WireTuple>),
}

#[derive(Debug)]
struct WireTuple {
    buf: Arc<[u8]>,
    start: u32,
    len: u32,
    id: u64,
    arity: u16,
    offsets: [u32; OFFSET_TABLE],
    cache: OnceLock<Result<Tuple, DecodeError>>,
}

impl WireTuple {
    fn view(&self) -> TupleView<'_> {
        TupleView {
            bytes: &self.buf[self.start as usize..(self.start + self.len) as usize],
            id: self.id,
            arity: self.arity,
            offsets: self.offsets,
        }
    }
}

impl LazyTuple {
    /// Wrap an already-owned tuple.
    pub fn from_tuple(t: Tuple) -> Self {
        LazyTuple(LazyRepr::Owned(Arc::new(t)))
    }

    /// Share an already-owned tuple.
    pub fn from_arc(t: Arc<Tuple>) -> Self {
        LazyTuple(LazyRepr::Owned(t))
    }

    /// Anchor a parsed view to its backing shared buffer. `view` must
    /// borrow from `buf` (checked); no bytes are re-validated or copied.
    pub fn from_wire_view(buf: Arc<[u8]>, view: &TupleView<'_>) -> Self {
        let base = buf.as_ptr() as usize;
        let p = view.bytes.as_ptr() as usize;
        assert!(
            p >= base && p + view.bytes.len() <= base + buf.len(),
            "view must borrow from the anchoring buffer"
        );
        let start = (p - base) as u32;
        LazyTuple(LazyRepr::Wire(Arc::new(WireTuple {
            start,
            len: view.bytes.len() as u32,
            id: view.id,
            arity: view.arity,
            offsets: view.offsets,
            cache: OnceLock::new(),
            buf,
        })))
    }

    /// Validate framing at `start` within `buf` and anchor the view.
    pub fn from_wire(buf: Arc<[u8]>, start: usize) -> Result<Self, DecodeError> {
        let view = TupleView::parse(&buf[start..])?;
        Ok(Self::from_wire_view(Arc::clone(&buf), &view))
    }

    /// The tuple id (header field, free to read).
    pub fn id(&self) -> u64 {
        match &self.0 {
            LazyRepr::Owned(t) => t.id,
            LazyRepr::Wire(w) => w.id,
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        match &self.0 {
            LazyRepr::Owned(t) => t.arity(),
            LazyRepr::Wire(w) => w.arity as usize,
        }
    }

    /// True when the handle still points at wire bytes (materialized or
    /// not) rather than an owned tuple.
    pub fn is_wire(&self) -> bool {
        matches!(self.0, LazyRepr::Wire(_))
    }

    /// True once an owned [`Tuple`] exists behind this handle.
    pub fn is_materialized(&self) -> bool {
        match &self.0 {
            LazyRepr::Owned(_) => true,
            LazyRepr::Wire(w) => w.cache.get().is_some(),
        }
    }

    /// Read field `i` without materializing. `None` past the arity;
    /// `Err(BadUtf8)` for a string field failing deferred validation.
    pub fn field(&self, i: usize) -> Option<Result<ValueView<'_>, DecodeError>> {
        match &self.0 {
            LazyRepr::Owned(t) => t.get(i).map(|v| Ok(ValueView::from(v))),
            LazyRepr::Wire(w) => w.view().field(i),
        }
    }

    /// The borrowed view, when the handle is wire-backed.
    pub fn view(&self) -> Option<TupleView<'_>> {
        match &self.0 {
            LazyRepr::Owned(_) => None,
            LazyRepr::Wire(w) => Some(w.view()),
        }
    }

    /// The owned tuple, decoding (and memoizing) it on first call. This
    /// is where a received tuple crosses the operator boundary; `Err`
    /// means the wire bytes hide a bad string that framing validation
    /// deliberately did not scan.
    pub fn materialize(&self) -> Result<&Tuple, DecodeError> {
        match &self.0 {
            LazyRepr::Owned(t) => Ok(t),
            LazyRepr::Wire(w) => w
                .cache
                .get_or_init(|| w.view().to_tuple())
                .as_ref()
                .map_err(|e| e.clone()),
        }
    }
}

/// Fig 9a: Storm's instance-oriented message — one destination id and a
/// freshly serialized copy of the data item.
#[derive(Clone, PartialEq, Debug)]
pub struct InstanceMessage {
    /// Emitting task.
    pub src: TaskId,
    /// The single destination task.
    pub dst: TaskId,
    /// The data item.
    pub tuple: Tuple,
}

impl InstanceMessage {
    /// Serialize `src | dst | dataItem` into `buf` without materializing
    /// an owned message — the hot path borrows the shared decoded tuple
    /// instead of cloning it per destination.
    pub fn encode_parts_into(src: TaskId, dst: TaskId, tuple: &Tuple, buf: &mut BytesMut) {
        buf.reserve(8 + tuple.payload_bytes());
        buf.put_u32_le(src.0);
        buf.put_u32_le(dst.0);
        encode_tuple_into(buf, tuple);
    }

    /// Serialize `src | dst | dataItem` into `buf` (pooled-buffer path).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        Self::encode_parts_into(self.src, self.dst, &self.tuple, buf);
    }

    /// Serialize: `src | dst | dataItem`.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_bytes());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Deserialize.
    pub fn decode(mut buf: impl Buf) -> Result<Self, DecodeError> {
        need(&buf, 8)?;
        let src = TaskId(buf.get_u32_le());
        let dst = TaskId(buf.get_u32_le());
        let tuple = decode_tuple(&mut buf)?;
        Ok(InstanceMessage { src, dst, tuple })
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + self.tuple.payload_bytes()
    }
}

/// Fig 9b: Whale's worker-oriented `BatchTuple`/`WorkerMessage` — the ids
/// of all destination instances hosted on the same worker, plus the data
/// item serialized exactly once.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkerMessage {
    /// Emitting task.
    pub src: TaskId,
    /// All destination tasks on the receiving worker.
    pub dst_ids: Vec<TaskId>,
    /// The data item.
    pub tuple: Tuple,
}

impl WorkerMessage {
    /// Serialize `src | n | dstIds[n] | dataItem` into `buf`
    /// (pooled-buffer path).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.wire_bytes());
        buf.put_u32_le(self.src.0);
        buf.put_u32_le(self.dst_ids.len() as u32);
        for id in &self.dst_ids {
            buf.put_u32_le(id.0);
        }
        encode_tuple_into(buf, &self.tuple);
    }

    /// Serialize: `src | n | dstIds[n] | dataItem`.
    pub fn encode(&self) -> Bytes {
        let mut buf =
            BytesMut::with_capacity(8 + 4 * self.dst_ids.len() + self.tuple.payload_bytes());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Serialize the worker header around an already-encoded data item
    /// into `buf` — the serialize-once fan-out path: the data item is
    /// encoded one time, then only the per-worker header differs.
    pub fn encode_with_item_into(src: TaskId, dst_ids: &[TaskId], item: &[u8], buf: &mut BytesMut) {
        buf.reserve(8 + 4 * dst_ids.len() + item.len());
        buf.put_u32_le(src.0);
        buf.put_u32_le(dst_ids.len() as u32);
        for id in dst_ids {
            buf.put_u32_le(id.0);
        }
        buf.put_slice(item);
    }

    /// Serialize around an already-encoded data item (the zero-copy path:
    /// the data item is serialized once and reused per worker).
    pub fn encode_with_item(src: TaskId, dst_ids: &[TaskId], item: &Bytes) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + 4 * dst_ids.len() + item.len());
        Self::encode_with_item_into(src, dst_ids, item, &mut buf);
        buf.freeze()
    }

    /// Deserialize.
    pub fn decode(mut buf: impl Buf) -> Result<Self, DecodeError> {
        need(&buf, 8)?;
        let src = TaskId(buf.get_u32_le());
        let n = buf.get_u32_le() as usize;
        need(&buf, 4 * n)?;
        let mut dst_ids = Vec::with_capacity(n);
        for _ in 0..n {
            dst_ids.push(TaskId(buf.get_u32_le()));
        }
        let tuple = decode_tuple(&mut buf)?;
        Ok(WorkerMessage {
            src,
            dst_ids,
            tuple,
        })
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + 4 * self.dst_ids.len() + self.tuple.payload_bytes()
    }
}

/// The fixed-offset header of a relay frame traveling the multicast tree
/// (after the 1-byte fabric tag): `origin u32 | epoch u32 | component u32 |
/// tracked u64`, followed by the encoded data item.
///
/// The header is deliberately *child-invariant*: the receiver's tree-node
/// index is NOT carried. The node→worker mapping skips the origin and is
/// a bijection, so each relay derives its own node index from its worker
/// id instead — which means the exact received bytes can be forwarded to
/// every child as one shared buffer: no decode, no re-encode, no
/// per-child header patching on the forward path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelayHeader {
    /// Worker id of the broadcast's source worker (tree root).
    pub origin: u32,
    /// Tree-structure epoch the frame was sent on; frames from retired
    /// epochs are dropped, never delivered.
    pub epoch: u32,
    /// Destination component of the broadcast.
    pub component: u32,
    /// XOR-acker ledger key (`attempt << 48 | root`), or 0 when the
    /// broadcast is untracked. Anchors are derived per destination, never
    /// carried.
    pub tracked: u64,
}

impl RelayHeader {
    /// Encoded size in bytes (excluding the fabric tag byte).
    pub const WIRE_BYTES: usize = 20;

    /// Serialize into `buf` at its current position.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(Self::WIRE_BYTES);
        buf.put_u32_le(self.origin);
        buf.put_u32_le(self.epoch);
        buf.put_u32_le(self.component);
        buf.put_u64_le(self.tracked);
    }

    /// Deserialize from `buf`, consuming exactly [`Self::WIRE_BYTES`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(&*buf, Self::WIRE_BYTES)?;
        Ok(RelayHeader {
            origin: buf.get_u32_le(),
            epoch: buf.get_u32_le(),
            component: buf.get_u32_le(),
            tracked: buf.get_u64_le(),
        })
    }
}

/// An `AddressedTuple`: what the dispatcher hands each local executor
/// after deserializing a [`WorkerMessage`] (§4).
#[derive(Clone, PartialEq, Debug)]
pub struct AddressedTuple {
    /// The destination task on this worker.
    pub dst: TaskId,
    /// The data item (shared — one deserialization, many destinations).
    pub tuple: Arc<Tuple>,
}

/// Expand a decoded [`WorkerMessage`] into per-task [`AddressedTuple`]s,
/// deserializing the data item exactly once.
pub fn dispatch_worker_message(msg: WorkerMessage) -> Vec<AddressedTuple> {
    let shared = Arc::new(msg.tuple);
    msg.dst_ids
        .iter()
        .map(|&dst| AddressedTuple {
            dst,
            tuple: Arc::clone(&shared),
        })
        .collect()
}

/// No-alloc fan-out of a parsed worker message: fill `dsts` (cleared
/// first) with the destination task ids, read straight from the wire.
/// The hot path reuses one scratch vector per pipeline and pairs each
/// id with one shared [`LazyTuple`] instead of materializing anything;
/// the owned [`dispatch_worker_message`] stays for tests.
pub fn dispatch_worker_message_into(msg: &WorkerMessageView<'_>, dsts: &mut Vec<TaskId>) {
    dsts.clear();
    dsts.extend(msg.dst_ids());
}

/// A pluggable wire format for the data item. Implementations must be
/// able to do all three: encode, eagerly decode, and hand out a
/// framing-validated [`TupleView`] — which is what lets the bench crate
/// price formats head-to-head on both the eager and the lazy path.
pub trait WireCodec: Send + Sync {
    /// Short stable name (bench/report label).
    fn name(&self) -> &'static str;

    /// Serialize `t` into `buf`.
    fn encode_tuple_into(&self, buf: &mut BytesMut, t: &Tuple);

    /// Eagerly decode a tuple from the front of `buf`, returning it and
    /// the bytes consumed.
    fn decode_tuple(&self, buf: &[u8]) -> Result<(Tuple, usize), DecodeError>;

    /// Validate framing once and return the lazy view.
    fn tuple_view<'a>(&self, buf: &'a [u8]) -> Result<TupleView<'a>, DecodeError>;

    /// Serialize into a fresh buffer (convenience over
    /// [`WireCodec::encode_tuple_into`]).
    fn encode_tuple(&self, t: &Tuple) -> Bytes {
        let mut buf = BytesMut::with_capacity(t.payload_bytes());
        self.encode_tuple_into(&mut buf, t);
        buf.freeze()
    }
}

/// The default fixed-offset format this module's free functions
/// implement: `id u64 | arity u16 | (tag, payload)…`, everything
/// little-endian.
#[derive(Clone, Copy, Default, Debug)]
pub struct WhaleCodec;

impl WireCodec for WhaleCodec {
    fn name(&self) -> &'static str {
        "whale"
    }

    fn encode_tuple_into(&self, buf: &mut BytesMut, t: &Tuple) {
        encode_tuple_into(buf, t);
    }

    fn decode_tuple(&self, buf: &[u8]) -> Result<(Tuple, usize), DecodeError> {
        let mut b = buf;
        let t = decode_tuple(&mut b)?;
        Ok((t, buf.len() - b.len()))
    }

    fn tuple_view<'a>(&self, buf: &'a [u8]) -> Result<TupleView<'a>, DecodeError> {
        TupleView::parse(buf)
    }
}

/// A second format for head-to-head pricing: the whale item behind a
/// `u32` little-endian length prefix. Four bytes bigger on the wire, but
/// a reader can bound or skip the whole item in O(1) without walking
/// fields — the classic framing trade the serialization-protocols
/// literature prices.
#[derive(Clone, Copy, Default, Debug)]
pub struct LengthPrefixedCodec;

impl WireCodec for LengthPrefixedCodec {
    fn name(&self) -> &'static str {
        "whale+len"
    }

    fn encode_tuple_into(&self, buf: &mut BytesMut, t: &Tuple) {
        buf.put_u32_le(t.payload_bytes() as u32);
        encode_tuple_into(buf, t);
    }

    fn decode_tuple(&self, buf: &[u8]) -> Result<(Tuple, usize), DecodeError> {
        let (t, used) = self.checked_item(buf, |item| {
            let mut b = item;
            let t = decode_tuple(&mut b)?;
            Ok((t, item.len() - b.len()))
        })?;
        Ok((t, used))
    }

    fn tuple_view<'a>(&self, buf: &'a [u8]) -> Result<TupleView<'a>, DecodeError> {
        let (view, _) = self.checked_item(buf, |item| {
            let v = TupleView::parse(item)?;
            Ok((v, v.wire_len()))
        })?;
        Ok(view)
    }
}

impl LengthPrefixedCodec {
    /// Slice out the length-prefixed item, run `f` over it, and verify
    /// the declared length matches what the item actually consumed — a
    /// lying prefix is a framing error, not a silent drift.
    fn checked_item<'a, T>(
        &self,
        buf: &'a [u8],
        f: impl FnOnce(&'a [u8]) -> Result<(T, usize), DecodeError>,
    ) -> Result<(T, usize), DecodeError> {
        if buf.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let len = read_u32(buf, 0) as usize;
        if buf.len() < 4 + len {
            return Err(DecodeError::Truncated);
        }
        let (out, used) = f(&buf[4..4 + len])?;
        if used != len {
            return Err(DecodeError::Truncated);
        }
        Ok((out, 4 + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> Tuple {
        Tuple::with_id(
            99,
            vec![
                Value::I64(-7),
                Value::F64(3.25),
                Value::str("driver-42"),
                Value::Bytes(Arc::from(&[1u8, 2, 3][..])),
                Value::Bool(true),
            ],
        )
    }

    #[test]
    fn tuple_roundtrip() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        let mut buf = bytes.clone();
        let back = decode_tuple(&mut buf).unwrap();
        assert_eq!(back, t);
        assert_eq!(buf.remaining(), 0, "decoder must consume everything");
    }

    #[test]
    fn encoded_size_matches_accounting() {
        let t = sample_tuple();
        assert_eq!(encode_tuple(&t).len(), t.payload_bytes());
    }

    #[test]
    fn instance_message_roundtrip() {
        let m = InstanceMessage {
            src: TaskId(3),
            dst: TaskId(77),
            tuple: sample_tuple(),
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_bytes());
        let back = InstanceMessage::decode(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn worker_message_roundtrip() {
        let m = WorkerMessage {
            src: TaskId(3),
            dst_ids: vec![TaskId(10), TaskId(11), TaskId(12)],
            tuple: sample_tuple(),
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_bytes());
        let back = WorkerMessage::decode(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn encode_with_item_equals_full_encode() {
        let t = sample_tuple();
        let item = encode_tuple(&t);
        let dsts = vec![TaskId(1), TaskId(2)];
        let a = WorkerMessage {
            src: TaskId(0),
            dst_ids: dsts.clone(),
            tuple: t,
        }
        .encode();
        let b = WorkerMessage::encode_with_item(TaskId(0), &dsts, &item);
        assert_eq!(a, b);
    }

    /// Byte-accounting drift guard: `wire_bytes()` is what the cost layer
    /// and the traffic counters charge, so it must stay exact under every
    /// encoding — batched, single-item, and empty-destination — and under
    /// both the direct and the shared-item (serialize-once) paths.
    #[test]
    fn wire_bytes_equals_encoded_len_for_all_shapes() {
        let shapes: Vec<Vec<TaskId>> = vec![
            (0..16).map(TaskId).collect(), // batched fan-out
            vec![TaskId(7)],               // single destination
            vec![],                        // empty destination set
        ];
        for dst_ids in shapes {
            let m = WorkerMessage {
                src: TaskId(3),
                dst_ids: dst_ids.clone(),
                tuple: sample_tuple(),
            };
            assert_eq!(
                m.wire_bytes(),
                m.encode().len(),
                "direct encode, {} destinations",
                dst_ids.len()
            );
            let item = encode_tuple(&m.tuple);
            assert_eq!(
                m.wire_bytes(),
                WorkerMessage::encode_with_item(m.src, &m.dst_ids, &item).len(),
                "shared-item encode, {} destinations",
                dst_ids.len()
            );
        }
        // The empty tuple bounds the other direction.
        let empty = WorkerMessage {
            src: TaskId(0),
            dst_ids: vec![],
            tuple: Tuple::new(vec![]),
        };
        assert_eq!(empty.wire_bytes(), empty.encode().len());
        let im = InstanceMessage {
            src: TaskId(1),
            dst: TaskId(2),
            tuple: sample_tuple(),
        };
        assert_eq!(im.wire_bytes(), im.encode().len());
    }

    #[test]
    fn pooled_encode_into_matches_fresh_encode() {
        let pool = crate::pool::BufferPool::default();
        let m = WorkerMessage {
            src: TaskId(3),
            dst_ids: vec![TaskId(10), TaskId(11)],
            tuple: sample_tuple(),
        };
        for round in 0..3 {
            let mut buf = pool.acquire();
            m.encode_into(&mut buf);
            assert_eq!(&buf[..], &m.encode()[..], "round {round}");
        }
        assert!(pool.hits() >= 2, "encode scratch buffers are reused");
    }

    #[test]
    fn worker_message_smaller_than_n_instance_messages() {
        let t = sample_tuple();
        let n = 16;
        let dsts: Vec<TaskId> = (0..n).map(TaskId).collect();
        let wm = WorkerMessage {
            src: TaskId(0),
            dst_ids: dsts,
            tuple: t.clone(),
        };
        let im_total: usize = (0..n)
            .map(|i| {
                InstanceMessage {
                    src: TaskId(0),
                    dst: TaskId(i),
                    tuple: t.clone(),
                }
                .wire_bytes()
            })
            .sum();
        assert!(
            wm.wire_bytes() * 5 < im_total,
            "worker message must amortize the data item"
        );
    }

    #[test]
    fn truncated_inputs_error() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        for cut in [0, 1, 5, 9, bytes.len() - 1] {
            let mut buf = bytes.slice(..cut);
            assert_eq!(
                decode_tuple(&mut buf),
                Err(DecodeError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(1);
        raw.put_u8(200); // bad tag
        let mut buf = raw.freeze();
        assert_eq!(decode_tuple(&mut buf), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(1);
        raw.put_u8(TAG_STR);
        raw.put_u32_le(2);
        raw.put_slice(&[0xFF, 0xFE]);
        let mut buf = raw.freeze();
        assert_eq!(decode_tuple(&mut buf), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn dispatch_shares_one_deserialization() {
        let m = WorkerMessage {
            src: TaskId(0),
            dst_ids: vec![TaskId(5), TaskId(6)],
            tuple: sample_tuple(),
        };
        let addressed = dispatch_worker_message(m);
        assert_eq!(addressed.len(), 2);
        assert_eq!(addressed[0].dst, TaskId(5));
        assert_eq!(addressed[1].dst, TaskId(6));
        assert!(Arc::ptr_eq(&addressed[0].tuple, &addressed[1].tuple));
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new(vec![]);
        let mut buf = encode_tuple(&t);
        assert_eq!(decode_tuple(&mut buf).unwrap(), t);
    }

    #[test]
    fn empty_string_and_bytes() {
        let t = Tuple::new(vec![Value::str(""), Value::Bytes(Arc::from(&[][..]))]);
        let mut buf = encode_tuple(&t);
        assert_eq!(decode_tuple(&mut buf).unwrap(), t);
    }

    #[test]
    fn relay_header_roundtrip_at_fixed_offsets() {
        let h = RelayHeader {
            origin: 3,
            epoch: 7,
            component: 2,
            tracked: (5u64 << 48) | 0xABCD,
        };
        let mut buf = BytesMut::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), RelayHeader::WIRE_BYTES);
        // Fixed offsets: origin@0, epoch@4, component@8, tracked@12.
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 7);
        assert_eq!(u32::from_le_bytes(buf[8..12].try_into().unwrap()), 2);
        let mut rd = buf.freeze();
        assert_eq!(RelayHeader::decode(&mut rd).unwrap(), h);
        assert!(!rd.has_remaining());
    }

    #[test]
    fn relay_header_truncated_is_an_error() {
        let mut short = Bytes::copy_from_slice(&[0u8; RelayHeader::WIRE_BYTES - 1]);
        assert_eq!(
            RelayHeader::decode(&mut short),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn tuple_view_matches_eager_decode() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        let view = TupleView::parse(&bytes).unwrap();
        assert_eq!(view.id(), t.id);
        assert_eq!(view.arity(), t.arity());
        assert_eq!(view.wire_len(), bytes.len());
        for (i, v) in t.values.iter().enumerate() {
            assert_eq!(view.field(i).unwrap().unwrap().to_owned(), *v);
        }
        assert!(view.field(t.arity()).is_none());
        assert_eq!(view.to_tuple().unwrap(), t);
    }

    #[test]
    fn view_str_and_bytes_borrow_the_wire_buffer() {
        let t = Tuple::new(vec![Value::str("hello"), Value::Bytes(Arc::from(&[9u8][..]))]);
        let bytes = encode_tuple(&t);
        let view = TupleView::parse(&bytes).unwrap();
        let s = view.field(0).unwrap().unwrap();
        let s = s.as_str().unwrap();
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(range.contains(&(s.as_ptr() as usize)), "str must borrow");
        let b = view.field(1).unwrap().unwrap();
        let b = b.as_bytes().unwrap();
        assert!(range.contains(&(b.as_ptr() as usize)), "bytes must borrow");
    }

    #[test]
    fn view_offset_table_spills_past_sixteen_fields() {
        let values: Vec<Value> = (0..40)
            .map(|i| match i % 3 {
                0 => Value::I64(i),
                1 => Value::str(format!("f{i}").as_str()),
                _ => Value::Bool(i % 2 == 0),
            })
            .collect();
        let t = Tuple::with_id(7, values);
        let bytes = encode_tuple(&t);
        let view = TupleView::parse(&bytes).unwrap();
        for (i, v) in t.values.iter().enumerate() {
            assert_eq!(view.field(i).unwrap().unwrap().to_owned(), *v, "field {i}");
        }
    }

    #[test]
    fn view_defers_utf8_to_field_access() {
        // Bad UTF-8 in field 1: framing parses fine, field 0 reads fine,
        // only touching field 1 surfaces the error.
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(2);
        raw.put_u8(TAG_I64);
        raw.put_i64_le(42);
        raw.put_u8(TAG_STR);
        raw.put_u32_le(2);
        raw.put_slice(&[0xFF, 0xFE]);
        let buf = raw.freeze();
        let view = TupleView::parse(&buf).unwrap();
        assert_eq!(view.field(0).unwrap().unwrap().as_i64(), Some(42));
        assert_eq!(view.field(1).unwrap(), Err(DecodeError::BadUtf8));
        assert_eq!(view.to_tuple(), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn view_truncation_and_bad_tags_fail_at_parse() {
        let t = sample_tuple();
        let bytes = encode_tuple(&t);
        for cut in [0, 1, 5, 9, bytes.len() - 1] {
            assert_eq!(
                TupleView::parse(&bytes[..cut]).err(),
                Some(DecodeError::Truncated),
                "cut={cut}"
            );
        }
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(1);
        raw.put_u8(200);
        let buf = raw.freeze();
        assert_eq!(TupleView::parse(&buf).err(), Some(DecodeError::BadTag(200)));
    }

    #[test]
    fn message_views_match_owned_decode() {
        let wm = WorkerMessage {
            src: TaskId(3),
            dst_ids: vec![TaskId(10), TaskId(11), TaskId(12)],
            tuple: sample_tuple(),
        };
        let bytes = wm.encode();
        let view = WorkerMessageView::parse(&bytes).unwrap();
        assert_eq!(view.src(), wm.src);
        assert_eq!(view.dst_len(), 3);
        assert_eq!(view.dst(1), Some(TaskId(11)));
        assert_eq!(view.dst(3), None);
        assert_eq!(view.dst_ids().collect::<Vec<_>>(), wm.dst_ids);
        assert_eq!(view.to_owned().unwrap(), wm);

        let im = InstanceMessage {
            src: TaskId(1),
            dst: TaskId(2),
            tuple: sample_tuple(),
        };
        let bytes = im.encode();
        let view = InstanceMessageView::parse(&bytes).unwrap();
        assert_eq!(view.src(), im.src);
        assert_eq!(view.dst(), im.dst);
        assert_eq!(view.to_owned().unwrap(), im);
    }

    #[test]
    fn dispatch_into_reuses_scratch_and_matches_owned_dispatch() {
        let wm = WorkerMessage {
            src: TaskId(0),
            dst_ids: vec![TaskId(5), TaskId(6), TaskId(7)],
            tuple: sample_tuple(),
        };
        let bytes = wm.encode();
        let view = WorkerMessageView::parse(&bytes).unwrap();
        let mut scratch = Vec::with_capacity(8);
        dispatch_worker_message_into(&view, &mut scratch);
        let owned: Vec<TaskId> = dispatch_worker_message(wm).iter().map(|a| a.dst).collect();
        assert_eq!(scratch, owned);
        let cap = scratch.capacity();
        dispatch_worker_message_into(&view, &mut scratch);
        assert_eq!(scratch.capacity(), cap, "steady state must not regrow");
    }

    #[test]
    fn lazy_tuple_materializes_once_and_shares() {
        let t = sample_tuple();
        let buf: Arc<[u8]> = Arc::from(&encode_tuple(&t)[..]);
        let lazy = LazyTuple::from_wire(Arc::clone(&buf), 0).unwrap();
        let clone = lazy.clone();
        assert!(lazy.is_wire());
        assert!(!lazy.is_materialized());
        assert_eq!(lazy.id(), t.id);
        assert_eq!(lazy.arity(), t.arity());
        assert_eq!(lazy.field(0).unwrap().unwrap().as_i64(), Some(-7));
        assert!(!lazy.is_materialized(), "field access must not materialize");
        let a = lazy.materialize().unwrap() as *const Tuple;
        assert!(clone.is_materialized(), "clones share the memoized decode");
        let b = clone.materialize().unwrap() as *const Tuple;
        assert_eq!(a, b, "one decode for every handle");
        assert_eq!(lazy.materialize().unwrap(), &t);
    }

    #[test]
    fn lazy_tuple_surfaces_deferred_bad_utf8_at_materialize() {
        let mut raw = BytesMut::new();
        raw.put_u64_le(1);
        raw.put_u16_le(1);
        raw.put_u8(TAG_STR);
        raw.put_u32_le(2);
        raw.put_slice(&[0xFF, 0xFE]);
        let buf: Arc<[u8]> = Arc::from(&raw.freeze()[..]);
        let lazy = LazyTuple::from_wire(Arc::clone(&buf), 0).unwrap();
        assert_eq!(lazy.materialize().err(), Some(DecodeError::BadUtf8));
        assert_eq!(lazy.materialize().err(), Some(DecodeError::BadUtf8));
    }

    #[test]
    fn owned_lazy_tuple_reads_in_place() {
        let t = sample_tuple();
        let lazy = LazyTuple::from_tuple(t.clone());
        assert!(!lazy.is_wire());
        assert!(lazy.is_materialized());
        assert!(lazy.view().is_none());
        assert_eq!(lazy.field(2).unwrap().unwrap().as_str(), Some("driver-42"));
        assert_eq!(lazy.materialize().unwrap(), &t);
    }

    #[test]
    fn wire_codecs_roundtrip_and_agree() {
        let t = sample_tuple();
        for codec in [&WhaleCodec as &dyn WireCodec, &LengthPrefixedCodec] {
            let bytes = codec.encode_tuple(&t);
            let (back, used) = codec.decode_tuple(&bytes).unwrap();
            assert_eq!(back, t, "{}", codec.name());
            assert_eq!(used, bytes.len(), "{}", codec.name());
            let view = codec.tuple_view(&bytes).unwrap();
            assert_eq!(view.to_tuple().unwrap(), t, "{}", codec.name());
            for cut in 0..bytes.len() {
                assert!(
                    codec.decode_tuple(&bytes[..cut]).is_err(),
                    "{} cut={cut}",
                    codec.name()
                );
            }
        }
        // The prefix costs exactly four bytes.
        assert_eq!(
            LengthPrefixedCodec.encode_tuple(&t).len(),
            WhaleCodec.encode_tuple(&t).len() + 4
        );
    }

    #[test]
    fn length_prefix_must_match_the_item() {
        let t = sample_tuple();
        let good = LengthPrefixedCodec.encode_tuple(&t);
        // Inflate the declared length past the item: framing error.
        let mut lying = good.to_vec();
        let len = u32::from_le_bytes(lying[0..4].try_into().unwrap());
        lying[0..4].copy_from_slice(&(len + 1).to_le_bytes());
        assert!(LengthPrefixedCodec.decode_tuple(&lying).is_err());
        assert!(LengthPrefixedCodec.tuple_view(&lying).is_err());
    }
}
