//! Communication planning: instance-oriented vs worker-oriented.
//!
//! Given one emitted tuple and its destination tasks, a [`CommMode`]
//! decides what actually goes on the wire:
//!
//! - **Instance-oriented** (Storm, RDMA-Storm): one message per destination
//!   *task*, each with its own serialization of the data item.
//! - **Worker-oriented** (Whale): one message per destination *worker*,
//!   the data item serialized once and destination ids packed in the
//!   header (§3.5).
//!
//! The plan also separates local deliveries (same worker as the source —
//! no network) from remote ones, and carries the byte/serialization
//! accounting behind Figs 25–28.

use crate::scheduler::{Placement, WorkerId};
use crate::task::TaskId;
use std::collections::BTreeMap;
use whale_sim::{CostModel, SimDuration};

/// Which communication mechanism the system runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommMode {
    /// One message per destination instance (Storm's design).
    InstanceOriented,
    /// One message per destination worker (Whale's design).
    WorkerOriented,
}

/// One network message to be sent for the tuple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Envelope {
    /// Receiving worker.
    pub dst_worker: WorkerId,
    /// Destination tasks on that worker covered by this message.
    pub dst_tasks: Vec<TaskId>,
    /// Bytes on the wire.
    pub wire_bytes: usize,
}

/// The complete send plan for one tuple.
#[derive(Clone, Debug)]
pub struct MessagePlan {
    /// Remote messages, ordered by destination worker.
    pub remote: Vec<Envelope>,
    /// Tasks delivered locally (source's own worker), no network involved.
    pub local_tasks: Vec<TaskId>,
    /// How many times the data item is serialized for this plan.
    pub serializations: u32,
    /// Total bytes crossing the network.
    pub total_wire_bytes: usize,
}

/// Fixed per-message header sizes, matching the codec
/// (`src:4 | dst:4` vs `src:4 | n:4 | ids:4n`).
const INSTANCE_HEADER: usize = 8;
const WORKER_HEADER: usize = 8;
const PER_ID: usize = 4;

/// Build the send plan for one tuple.
///
/// `item_bytes` is the serialized size of the data item;
/// `src` the emitting task; `dsts` the routed destination tasks.
pub fn plan(
    mode: CommMode,
    src: TaskId,
    item_bytes: usize,
    dsts: &[TaskId],
    placement: &Placement,
) -> MessagePlan {
    let src_worker = placement.worker_of(src);
    let by_worker: BTreeMap<WorkerId, Vec<TaskId>> = placement.group_by_worker(dsts);

    let mut remote = Vec::new();
    let mut local_tasks = Vec::new();
    let mut serializations: u32 = 0;
    let mut total_wire_bytes = 0usize;

    match mode {
        CommMode::InstanceOriented => {
            // Even local destinations pay serialization in Storm's executor
            // send path; only the network hop is skipped.
            for (&worker, tasks) in &by_worker {
                for &t in tasks {
                    serializations += 1;
                    if worker == src_worker {
                        local_tasks.push(t);
                    } else {
                        let wire_bytes = INSTANCE_HEADER + item_bytes;
                        total_wire_bytes += wire_bytes;
                        remote.push(Envelope {
                            dst_worker: worker,
                            dst_tasks: vec![t],
                            wire_bytes,
                        });
                    }
                }
            }
        }
        CommMode::WorkerOriented => {
            // Serialize the data item exactly once, reuse it per worker.
            serializations = 1;
            for (&worker, tasks) in &by_worker {
                if worker == src_worker {
                    local_tasks.extend(tasks.iter().copied());
                } else {
                    let wire_bytes = WORKER_HEADER + PER_ID * tasks.len() + item_bytes;
                    total_wire_bytes += wire_bytes;
                    remote.push(Envelope {
                        dst_worker: worker,
                        dst_tasks: tasks.clone(),
                        wire_bytes,
                    });
                }
            }
        }
    }

    MessagePlan {
        remote,
        local_tasks,
        serializations,
        total_wire_bytes,
    }
}

impl MessagePlan {
    /// Upstream CPU spent serializing for this plan.
    pub fn serialization_cpu(&self, item_bytes: usize, cost: &CostModel) -> SimDuration {
        match self.serializations {
            0 => SimDuration::ZERO,
            1 => {
                let ids: usize = self.remote.iter().map(|e| e.dst_tasks.len()).sum::<usize>()
                    + self.local_tasks.len();
                cost.serialize_batch(item_bytes, ids)
            }
            n => cost.serialize(item_bytes) * n as u64,
        }
    }

    /// Number of remote messages.
    pub fn remote_count(&self) -> usize {
        self.remote.len()
    }

    /// Total destination tasks covered (remote + local).
    pub fn fanout(&self) -> usize {
        self.remote.iter().map(|e| e.dst_tasks.len()).sum::<usize>() + self.local_tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Grouping, TopologyBuilder};
    use crate::tuple::Schema;
    use whale_net::ClusterSpec;

    /// 1 spout task + `bolt_p` bolt tasks on `machines` machines.
    fn setup(bolt_p: u32, machines: u32) -> (Placement, TaskId, Vec<TaskId>) {
        let mut b = TopologyBuilder::new();
        b.spout("src", 1, Schema::new(vec!["k"]))
            .bolt("match", bolt_p, Schema::new(vec!["k"]))
            .connect("src", "match", Grouping::All);
        let t = b.build().unwrap();
        let c = ClusterSpec::new(machines, 1, 16);
        let p = Placement::even(&t, &c);
        let src = t.tasks_of("src")[0];
        let dsts = t.tasks_of("match");
        (p, src, dsts)
    }

    #[test]
    fn instance_oriented_one_message_per_remote_task() {
        let (p, src, dsts) = setup(12, 4);
        let plan = plan(CommMode::InstanceOriented, src, 100, &dsts, &p);
        // 12 tasks over 4 workers: 3 local (worker 0), 9 remote.
        assert_eq!(plan.local_tasks.len(), 3);
        assert_eq!(plan.remote_count(), 9);
        assert_eq!(plan.serializations, 12);
        assert_eq!(plan.total_wire_bytes, 9 * (8 + 100));
        assert_eq!(plan.fanout(), 12);
    }

    #[test]
    fn worker_oriented_one_message_per_remote_worker() {
        let (p, src, dsts) = setup(12, 4);
        let plan = plan(CommMode::WorkerOriented, src, 100, &dsts, &p);
        assert_eq!(plan.local_tasks.len(), 3);
        assert_eq!(plan.remote_count(), 3, "one message per remote worker");
        assert_eq!(plan.serializations, 1);
        // Each remote worker hosts 3 tasks: 8 + 4*3 + 100 bytes.
        assert_eq!(plan.total_wire_bytes, 3 * (8 + 12 + 100));
        assert_eq!(plan.fanout(), 12);
    }

    #[test]
    fn traffic_ratio_matches_fig27_shape() {
        // At parallelism 480 on 30 machines, Whale should cut traffic ~90%.
        let (p, src, dsts) = setup(480, 30);
        let io = plan(CommMode::InstanceOriented, src, 150, &dsts, &p);
        let wo = plan(CommMode::WorkerOriented, src, 150, &dsts, &p);
        let reduction = 1.0 - wo.total_wire_bytes as f64 / io.total_wire_bytes as f64;
        assert!(reduction > 0.85, "reduction={reduction}");
    }

    #[test]
    fn serialization_cpu_scales() {
        let (p, src, dsts) = setup(480, 30);
        let cost = CostModel::default();
        let io = plan(CommMode::InstanceOriented, src, 150, &dsts, &p);
        let wo = plan(CommMode::WorkerOriented, src, 150, &dsts, &p);
        let io_cpu = io.serialization_cpu(150, &cost);
        let wo_cpu = wo.serialization_cpu(150, &cost);
        assert!(
            io_cpu.as_nanos() > 100 * wo_cpu.as_nanos(),
            "io={io_cpu} wo={wo_cpu}"
        );
    }

    #[test]
    fn all_local_when_single_machine() {
        let (p, src, dsts) = setup(8, 1);
        for mode in [CommMode::InstanceOriented, CommMode::WorkerOriented] {
            let plan = plan(mode, src, 100, &dsts, &p);
            assert_eq!(plan.remote_count(), 0);
            assert_eq!(plan.local_tasks.len(), 8);
            assert_eq!(plan.total_wire_bytes, 0);
        }
    }

    #[test]
    fn envelopes_ordered_by_worker() {
        let (p, src, dsts) = setup(30, 10);
        let plan = plan(CommMode::WorkerOriented, src, 64, &dsts, &p);
        let workers: Vec<u32> = plan.remote.iter().map(|e| e.dst_worker.0).collect();
        let mut sorted = workers.clone();
        sorted.sort_unstable();
        assert_eq!(workers, sorted);
    }

    #[test]
    fn single_destination_equivalence() {
        // With one remote destination the two modes differ only by header.
        let (p, src, dsts) = setup(2, 2);
        let remote_dst: Vec<TaskId> = dsts
            .iter()
            .copied()
            .filter(|&t| p.worker_of(t) != p.worker_of(src))
            .take(1)
            .collect();
        let io = plan(CommMode::InstanceOriented, src, 100, &remote_dst, &p);
        let wo = plan(CommMode::WorkerOriented, src, 100, &remote_dst, &p);
        assert_eq!(io.remote_count(), 1);
        assert_eq!(wo.remote_count(), 1);
        assert_eq!(io.total_wire_bytes, 108);
        assert_eq!(wo.total_wire_bytes, 112); // 8 + 4*1 + 100
    }
}
