//! Operator traits: the user-facing API for writing spouts and bolts.

use crate::codec::{DecodeError, LazyTuple};
use crate::tuple::Tuple;

/// Receives the tuples an operator emits.
pub trait Emitter {
    /// Emit a tuple to all subscribed downstream components.
    fn emit(&mut self, tuple: Tuple);
}

/// A simple collecting emitter for tests and batch-style execution.
#[derive(Default, Debug)]
pub struct VecEmitter {
    /// Tuples emitted so far.
    pub emitted: Vec<Tuple>,
}

impl Emitter for VecEmitter {
    fn emit(&mut self, tuple: Tuple) {
        self.emitted.push(tuple);
    }
}

/// A source of tuples (one instance per spout task).
pub trait Spout: Send {
    /// Produce the next tuple, or `None` when the stream is exhausted.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

/// A processing operator (one instance per bolt task).
pub trait Bolt: Send {
    /// Process one input tuple, emitting any outputs.
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter);

    /// Process one lazily-decoded input — what the runtime's receive
    /// path actually calls. The default materializes the tuple (at most
    /// once per worker: the handle memoizes, so fan-out to many local
    /// tasks still decodes once) and forwards to [`Bolt::execute`].
    /// Bolts that only touch a field or two should override this and
    /// read straight off the wire view, skipping materialization
    /// entirely. `Err` means the tuple's wire bytes are corrupt (its
    /// deferred UTF-8 validation failed); the runtime drops the tuple
    /// and counts it instead of crashing the pipeline.
    fn execute_lazy(
        &mut self,
        input: &LazyTuple,
        out: &mut dyn Emitter,
    ) -> Result<(), DecodeError> {
        self.execute(input.materialize()?, out);
        Ok(())
    }

    /// Called once when the stream has fully drained; emit any final state.
    fn finish(&mut self, _out: &mut dyn Emitter) {}
}

/// Factory producing per-task bolt instances.
pub type BoltFactory = Box<dyn Fn(u32) -> Box<dyn Bolt> + Send + Sync>;
/// Factory producing per-task spout instances.
pub type SpoutFactory = Box<dyn Fn(u32) -> Box<dyn Spout> + Send + Sync>;

/// A spout over any iterator, for tests and examples.
pub struct IterSpout<I: Iterator<Item = Tuple> + Send> {
    iter: I,
}

impl<I: Iterator<Item = Tuple> + Send> IterSpout<I> {
    /// Wrap an iterator.
    pub fn new(iter: I) -> Self {
        IterSpout { iter }
    }
}

impl<I: Iterator<Item = Tuple> + Send> Spout for IterSpout<I> {
    fn next_tuple(&mut self) -> Option<Tuple> {
        self.iter.next()
    }
}

/// A bolt applying a function to each tuple, for tests and examples.
pub struct FnBolt<F: FnMut(&Tuple, &mut dyn Emitter) + Send> {
    f: F,
}

impl<F: FnMut(&Tuple, &mut dyn Emitter) + Send> FnBolt<F> {
    /// Wrap a function.
    pub fn new(f: F) -> Self {
        FnBolt { f }
    }
}

impl<F: FnMut(&Tuple, &mut dyn Emitter) + Send> Bolt for FnBolt<F> {
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter) {
        (self.f)(input, out)
    }
}

/// A bolt applying a function to each *lazy* tuple: the zero-
/// materialization path for sinks and key-touch operators that read a
/// field or two straight off the wire buffer.
pub struct LazyFnBolt<F: FnMut(&LazyTuple, &mut dyn Emitter) + Send> {
    f: F,
}

impl<F: FnMut(&LazyTuple, &mut dyn Emitter) + Send> LazyFnBolt<F> {
    /// Wrap a function over lazy tuples.
    pub fn new(f: F) -> Self {
        LazyFnBolt { f }
    }
}

impl<F: FnMut(&LazyTuple, &mut dyn Emitter) + Send> Bolt for LazyFnBolt<F> {
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter) {
        // Direct (non-wire) invocation: wrap the owned tuple so the one
        // closure serves both entry points.
        (self.f)(&LazyTuple::from_tuple(input.clone()), out)
    }

    fn execute_lazy(
        &mut self,
        input: &LazyTuple,
        out: &mut dyn Emitter,
    ) -> Result<(), DecodeError> {
        (self.f)(input, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn iter_spout_drains() {
        let tuples = vec![
            Tuple::new(vec![Value::I64(1)]),
            Tuple::new(vec![Value::I64(2)]),
        ];
        let mut s = IterSpout::new(tuples.into_iter());
        assert_eq!(s.next_tuple().unwrap().get(0).unwrap().as_i64(), Some(1));
        assert_eq!(s.next_tuple().unwrap().get(0).unwrap().as_i64(), Some(2));
        assert!(s.next_tuple().is_none());
    }

    #[test]
    fn fn_bolt_transforms() {
        let mut b = FnBolt::new(|t: &Tuple, out: &mut dyn Emitter| {
            let x = t.get(0).unwrap().as_i64().unwrap();
            out.emit(Tuple::new(vec![Value::I64(x * 2)]));
        });
        let mut out = VecEmitter::default();
        b.execute(&Tuple::new(vec![Value::I64(21)]), &mut out);
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].get(0).unwrap().as_i64(), Some(42));
    }

    #[test]
    fn lazy_fn_bolt_reads_the_wire_without_materializing() {
        let mut b = LazyFnBolt::new(|t: &LazyTuple, out: &mut dyn Emitter| {
            let x = t.field(0).unwrap().unwrap().as_i64().unwrap();
            out.emit(Tuple::new(vec![Value::I64(x * 2)]));
        });
        let input = Tuple::new(vec![Value::I64(21), Value::str("never touched")]);
        let bytes = crate::codec::encode_tuple(&input);
        let buf: std::sync::Arc<[u8]> = std::sync::Arc::from(&bytes[..]);
        let lazy = LazyTuple::from_wire(buf, 0).unwrap();
        let mut out = VecEmitter::default();
        b.execute_lazy(&lazy, &mut out).unwrap();
        assert_eq!(out.emitted[0].get(0).unwrap().as_i64(), Some(42));
        assert!(!lazy.is_materialized(), "lazy bolt must not materialize");
        // The default execute_lazy (owned-path bolts) materializes once.
        let mut eager = FnBolt::new(|t: &Tuple, out: &mut dyn Emitter| {
            out.emit(t.clone());
        });
        eager.execute_lazy(&lazy, &mut out).unwrap();
        assert!(lazy.is_materialized());
    }

    #[test]
    fn default_finish_is_noop() {
        let mut b = FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {});
        let mut out = VecEmitter::default();
        b.finish(&mut out);
        assert!(out.emitted.is_empty());
    }
}
