//! Operator traits: the user-facing API for writing spouts and bolts.

use crate::tuple::Tuple;

/// Receives the tuples an operator emits.
pub trait Emitter {
    /// Emit a tuple to all subscribed downstream components.
    fn emit(&mut self, tuple: Tuple);
}

/// A simple collecting emitter for tests and batch-style execution.
#[derive(Default, Debug)]
pub struct VecEmitter {
    /// Tuples emitted so far.
    pub emitted: Vec<Tuple>,
}

impl Emitter for VecEmitter {
    fn emit(&mut self, tuple: Tuple) {
        self.emitted.push(tuple);
    }
}

/// A source of tuples (one instance per spout task).
pub trait Spout: Send {
    /// Produce the next tuple, or `None` when the stream is exhausted.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

/// A processing operator (one instance per bolt task).
pub trait Bolt: Send {
    /// Process one input tuple, emitting any outputs.
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter);

    /// Called once when the stream has fully drained; emit any final state.
    fn finish(&mut self, _out: &mut dyn Emitter) {}
}

/// Factory producing per-task bolt instances.
pub type BoltFactory = Box<dyn Fn(u32) -> Box<dyn Bolt> + Send + Sync>;
/// Factory producing per-task spout instances.
pub type SpoutFactory = Box<dyn Fn(u32) -> Box<dyn Spout> + Send + Sync>;

/// A spout over any iterator, for tests and examples.
pub struct IterSpout<I: Iterator<Item = Tuple> + Send> {
    iter: I,
}

impl<I: Iterator<Item = Tuple> + Send> IterSpout<I> {
    /// Wrap an iterator.
    pub fn new(iter: I) -> Self {
        IterSpout { iter }
    }
}

impl<I: Iterator<Item = Tuple> + Send> Spout for IterSpout<I> {
    fn next_tuple(&mut self) -> Option<Tuple> {
        self.iter.next()
    }
}

/// A bolt applying a function to each tuple, for tests and examples.
pub struct FnBolt<F: FnMut(&Tuple, &mut dyn Emitter) + Send> {
    f: F,
}

impl<F: FnMut(&Tuple, &mut dyn Emitter) + Send> FnBolt<F> {
    /// Wrap a function.
    pub fn new(f: F) -> Self {
        FnBolt { f }
    }
}

impl<F: FnMut(&Tuple, &mut dyn Emitter) + Send> Bolt for FnBolt<F> {
    fn execute(&mut self, input: &Tuple, out: &mut dyn Emitter) {
        (self.f)(input, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Value;

    #[test]
    fn iter_spout_drains() {
        let tuples = vec![
            Tuple::new(vec![Value::I64(1)]),
            Tuple::new(vec![Value::I64(2)]),
        ];
        let mut s = IterSpout::new(tuples.into_iter());
        assert_eq!(s.next_tuple().unwrap().get(0).unwrap().as_i64(), Some(1));
        assert_eq!(s.next_tuple().unwrap().get(0).unwrap().as_i64(), Some(2));
        assert!(s.next_tuple().is_none());
    }

    #[test]
    fn fn_bolt_transforms() {
        let mut b = FnBolt::new(|t: &Tuple, out: &mut dyn Emitter| {
            let x = t.get(0).unwrap().as_i64().unwrap();
            out.emit(Tuple::new(vec![Value::I64(x * 2)]));
        });
        let mut out = VecEmitter::default();
        b.execute(&Tuple::new(vec![Value::I64(21)]), &mut out);
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].get(0).unwrap().as_i64(), Some(42));
    }

    #[test]
    fn default_finish_is_noop() {
        let mut b = FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {});
        let mut out = VecEmitter::default();
        b.finish(&mut out);
        assert!(out.emitted.is_empty());
    }
}
