//! Task identities and the operator → task table.
//!
//! Each operator (component) runs as `parallelism` tasks. Tasks are
//! numbered densely across the topology, in component declaration order,
//! exactly like Storm's task ids.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// Identifier of a task (an operator instance).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Identifier of a logical component (operator) in a topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ComponentId(pub u32);

/// Dense assignment of task-id ranges to components.
#[derive(Clone, Debug, Default)]
pub struct TaskTable {
    ranges: BTreeMap<ComponentId, Range<u32>>,
    next: u32,
}

impl TaskTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `parallelism` task ids for `component`; returns the range.
    pub fn allocate(&mut self, component: ComponentId, parallelism: u32) -> Range<u32> {
        assert!(parallelism > 0, "parallelism must be positive");
        assert!(
            !self.ranges.contains_key(&component),
            "component {component:?} already allocated"
        );
        let range = self.next..self.next + parallelism;
        self.next += parallelism;
        self.ranges.insert(component, range.clone());
        range
    }

    /// Task ids of a component.
    pub fn tasks_of(&self, component: ComponentId) -> Vec<TaskId> {
        self.ranges
            .get(&component)
            .map(|r| r.clone().map(TaskId).collect())
            .unwrap_or_default()
    }

    /// Parallelism of a component (0 if unknown).
    pub fn parallelism(&self, component: ComponentId) -> u32 {
        self.ranges.get(&component).map_or(0, |r| r.end - r.start)
    }

    /// The component owning a task id.
    pub fn component_of(&self, task: TaskId) -> Option<ComponentId> {
        self.ranges
            .iter()
            .find(|(_, r)| r.contains(&task.0))
            .map(|(&c, _)| c)
    }

    /// Index of a task within its component (0-based).
    pub fn index_within(&self, task: TaskId) -> Option<u32> {
        let c = self.component_of(task)?;
        Some(task.0 - self.ranges[&c].start)
    }

    /// Total number of tasks allocated.
    pub fn total_tasks(&self) -> u32 {
        self.next
    }

    /// All task ids in order.
    pub fn all_tasks(&self) -> Vec<TaskId> {
        (0..self.next).map(TaskId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_allocation() {
        let mut t = TaskTable::new();
        let a = t.allocate(ComponentId(0), 2);
        let b = t.allocate(ComponentId(1), 3);
        assert_eq!(a, 0..2);
        assert_eq!(b, 2..5);
        assert_eq!(t.total_tasks(), 5);
    }

    #[test]
    fn lookup_directions() {
        let mut t = TaskTable::new();
        t.allocate(ComponentId(0), 2);
        t.allocate(ComponentId(1), 3);
        assert_eq!(
            t.tasks_of(ComponentId(1)),
            vec![TaskId(2), TaskId(3), TaskId(4)]
        );
        assert_eq!(t.component_of(TaskId(0)), Some(ComponentId(0)));
        assert_eq!(t.component_of(TaskId(4)), Some(ComponentId(1)));
        assert_eq!(t.component_of(TaskId(9)), None);
        assert_eq!(t.index_within(TaskId(3)), Some(1));
        assert_eq!(t.parallelism(ComponentId(1)), 3);
        assert_eq!(t.parallelism(ComponentId(9)), 0);
    }

    #[test]
    fn all_tasks_enumerates() {
        let mut t = TaskTable::new();
        t.allocate(ComponentId(0), 4);
        assert_eq!(t.all_tasks().len(), 4);
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocation_rejected() {
        let mut t = TaskTable::new();
        t.allocate(ComponentId(0), 1);
        t.allocate(ComponentId(0), 1);
    }

    #[test]
    #[should_panic(expected = "parallelism must be positive")]
    fn zero_parallelism_rejected() {
        let mut t = TaskTable::new();
        t.allocate(ComponentId(0), 0);
    }
}
