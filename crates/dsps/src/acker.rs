//! Storm's acker: XOR-ledger tuple tracking for at-least-once semantics.
//!
//! Every tuple emitted by a spout gets a random 64-bit anchor id. Each
//! downstream emit anchors a new random id; each completed execution acks
//! the ids it consumed and produced. The acker XORs everything per tuple
//! tree: since `x ^ x = 0`, the ledger reaches zero exactly when every
//! tuple in the tree has been both anchored and acked — regardless of
//! order — at O(1) memory per tree. A timeout marks trees as failed for
//! replay.
//!
//! Whale changes the messaging layer, not the reliability layer, so the
//! substrate carries Storm's design unchanged.

use std::collections::HashMap;
use whale_sim::{SimDuration, SimRng, SimTime};

/// Completion state of one spout tuple tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeState {
    /// XOR ledger non-zero: executions outstanding.
    Pending,
    /// Ledger hit zero: fully processed.
    Acked,
    /// Timed out before the ledger zeroed: replay needed.
    Failed,
}

/// One tracked tuple tree.
#[derive(Clone, Copy, Debug)]
struct Entry {
    ledger: u64,
    started: SimTime,
}

/// The acker task: tracks every in-flight spout tuple by root id.
#[derive(Debug)]
pub struct Acker {
    entries: HashMap<u64, Entry>,
    timeout: SimDuration,
    acked: u64,
    failed: u64,
}

impl Acker {
    /// Create with the tree-completion `timeout` (Storm's
    /// `topology.message.timeout.secs`).
    pub fn new(timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero());
        Acker {
            entries: HashMap::new(),
            timeout,
            acked: 0,
            failed: 0,
        }
    }

    /// A spout emitted root tuple `root_id` with initial anchor
    /// `anchor_id` at time `now`.
    pub fn init(&mut self, root_id: u64, anchor_id: u64, now: SimTime) {
        self.entries.insert(
            root_id,
            Entry {
                ledger: anchor_id,
                started: now,
            },
        );
    }

    /// An executor processed a tuple of tree `root_id`: XOR in the
    /// consumed anchor and every newly emitted anchor. Returns the tree
    /// state after the update.
    pub fn ack(&mut self, root_id: u64, xor_of_anchors: u64) -> TreeState {
        let Some(entry) = self.entries.get_mut(&root_id) else {
            // Already acked/failed (e.g. late ack after timeout).
            return TreeState::Failed;
        };
        entry.ledger ^= xor_of_anchors;
        if entry.ledger == 0 {
            self.entries.remove(&root_id);
            self.acked += 1;
            TreeState::Acked
        } else {
            TreeState::Pending
        }
    }

    /// Expire trees older than the timeout at `now`; returns the failed
    /// root ids (for spout replay).
    pub fn expire(&mut self, now: SimTime) -> Vec<u64> {
        let timeout = self.timeout;
        let expired: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| now.since(e.started) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            self.entries.remove(id);
            self.failed += 1;
        }
        expired
    }

    /// Like [`Acker::expire`], but only fails trees whose root id
    /// satisfies `matches` — lets each spout of a shared acker expire
    /// its own tuples without failing a sibling's.
    pub fn expire_matching(
        &mut self,
        now: SimTime,
        matches: impl Fn(u64) -> bool,
    ) -> Vec<u64> {
        let timeout = self.timeout;
        let expired: Vec<u64> = self
            .entries
            .iter()
            .filter(|(&id, e)| matches(id) && now.since(e.started) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            self.entries.remove(id);
            self.failed += 1;
        }
        expired
    }

    /// True while `root_id` is still tracked (neither acked nor failed).
    pub fn contains(&self, root_id: u64) -> bool {
        self.entries.contains_key(&root_id)
    }

    /// Trees still pending.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Fully acked trees.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Timed-out trees.
    pub fn failed(&self) -> u64 {
        self.failed
    }
}

/// Executor-side helper: accumulates the XOR an execution must report —
/// the consumed anchor plus one fresh random anchor per emitted tuple.
#[derive(Debug)]
pub struct AckBuilder {
    xor: u64,
    rng: SimRng,
    emitted_anchors: Vec<u64>,
}

impl AckBuilder {
    /// Start an execution that consumed `consumed_anchor`.
    pub fn consuming(consumed_anchor: u64, rng: SimRng) -> Self {
        AckBuilder {
            xor: consumed_anchor,
            rng,
            emitted_anchors: Vec::new(),
        }
    }

    /// Register one emitted (anchored) tuple; returns its new anchor id
    /// to attach to the outgoing tuple.
    pub fn emit(&mut self) -> u64 {
        let anchor = self.rng.next_u64().max(1); // 0 would be a no-op in XOR
        self.xor ^= anchor;
        self.emitted_anchors.push(anchor);
        anchor
    }

    /// The value to send to the acker for this execution.
    pub fn finish(self) -> u64 {
        self.xor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acker() -> Acker {
        Acker::new(SimDuration::from_secs(30))
    }

    #[test]
    fn linear_chain_completes() {
        // spout → A → B (leaf).
        let mut a = acker();
        let root = 7;
        let anchor0 = 0xDEAD;
        a.init(root, anchor0, SimTime::ZERO);

        // A consumes anchor0 and emits one tuple with anchor1.
        let mut b1 = AckBuilder::consuming(anchor0, SimRng::new(1));
        let anchor1 = b1.emit();
        assert_eq!(a.ack(root, b1.finish()), TreeState::Pending);

        // B consumes anchor1, emits nothing.
        let b2 = AckBuilder::consuming(anchor1, SimRng::new(2));
        assert_eq!(a.ack(root, b2.finish()), TreeState::Acked);
        assert_eq!(a.acked(), 1);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn fanout_tree_completes_in_any_order() {
        // spout tuple broadcast to 8 instances, each a leaf.
        let mut a = acker();
        let root = 1;
        let mut rng = SimRng::new(9);
        // The spout anchors one id per downstream branch: ledger starts as
        // the XOR of all branch anchors.
        let anchors: Vec<u64> = (0..8).map(|_| rng.next_u64().max(1)).collect();
        let init: u64 = anchors.iter().fold(0, |x, &a| x ^ a);
        a.init(root, init, SimTime::ZERO);
        // Leaves ack in a scrambled order.
        let mut order = anchors.clone();
        rng.shuffle(&mut order);
        for (i, &anchor) in order.iter().enumerate() {
            let state = a.ack(root, anchor);
            if i + 1 == order.len() {
                assert_eq!(state, TreeState::Acked);
            } else {
                assert_eq!(state, TreeState::Pending, "i={i}");
            }
        }
    }

    #[test]
    fn relay_armed_tree_survives_stragglers_after_completion() {
        // The relay path arms every destination's anchor *before* the
        // frame departs, so acks crossing several relay hops land on a
        // fully-armed ledger in whatever order the tree delivers them —
        // here deepest subtree first. A straggling duplicate ack (a
        // replayed frame whose executor-side dedup raced completion)
        // reports `Failed` harmlessly instead of reviving the tree.
        let mut a = acker();
        let anchors = [3u64, 5, 9, 17];
        let armed = anchors.iter().fold(0u64, |x, &v| x ^ v);
        a.init(1, armed, SimTime::ZERO);
        for (i, &anchor) in anchors.iter().enumerate().rev() {
            let state = a.ack(1, anchor);
            if i == 0 {
                assert_eq!(state, TreeState::Acked);
            } else {
                assert_eq!(state, TreeState::Pending, "i={i}");
            }
        }
        assert_eq!(a.acked(), 1);
        assert_eq!(a.ack(1, anchors[2]), TreeState::Failed);
        assert_eq!(a.pending(), 0, "late ack must not re-create the tree");
        assert_eq!(a.acked(), 1);
    }

    #[test]
    fn deep_tree_with_intermediate_emits() {
        let mut a = acker();
        let root = 2;
        let spout_anchor = 0x1234_5678;
        a.init(root, spout_anchor, SimTime::ZERO);
        // Stage 1 consumes the spout anchor and emits 3 tuples.
        let mut s1 = AckBuilder::consuming(spout_anchor, SimRng::new(5));
        let children: Vec<u64> = (0..3).map(|_| s1.emit()).collect();
        assert_eq!(a.ack(root, s1.finish()), TreeState::Pending);
        // Stage 2: each child is a leaf.
        for (i, &c) in children.iter().enumerate() {
            let b = AckBuilder::consuming(c, SimRng::new(50 + i as u64));
            let state = a.ack(root, b.finish());
            if i == 2 {
                assert_eq!(state, TreeState::Acked);
            } else {
                assert_eq!(state, TreeState::Pending);
            }
        }
    }

    #[test]
    fn timeout_fails_stragglers() {
        let mut a = Acker::new(SimDuration::from_millis(100));
        a.init(1, 0xAA, SimTime::ZERO);
        a.init(2, 0xBB, SimTime::from_millis(90));
        let failed = a.expire(SimTime::from_millis(150));
        assert_eq!(failed, vec![1]);
        assert_eq!(a.failed(), 1);
        assert_eq!(a.pending(), 1);
        // The late ack for the failed tree is rejected.
        assert_eq!(a.ack(1, 0xAA), TreeState::Failed);
        // Tree 2 can still complete.
        assert_eq!(a.ack(2, 0xBB), TreeState::Acked);
    }

    #[test]
    fn expire_matching_spares_other_owners() {
        let mut a = Acker::new(SimDuration::from_millis(100));
        a.init(1, 0xAA, SimTime::ZERO);
        a.init(2, 0xBB, SimTime::ZERO);
        let failed = a.expire_matching(SimTime::from_millis(500), |id| id == 1);
        assert_eq!(failed, vec![1]);
        assert!(!a.contains(1));
        assert!(a.contains(2));
        assert_eq!(a.failed(), 1);
        // The unmatched tree is still live and completable.
        assert_eq!(a.ack(2, 0xBB), TreeState::Acked);
        assert!(!a.contains(2));
    }

    #[test]
    fn anchors_never_zero() {
        let mut b = AckBuilder::consuming(1, SimRng::new(3));
        for _ in 0..1_000 {
            assert_ne!(b.emit(), 0);
        }
    }

    #[test]
    fn partial_tree_stays_pending() {
        let mut a = acker();
        a.init(1, 0xF0F0, SimTime::ZERO);
        assert_eq!(a.ack(1, 0x0F0F), TreeState::Pending);
        assert_eq!(a.pending(), 1);
        assert_eq!(a.ack(1, 0xFFFF), TreeState::Acked);
    }
}
