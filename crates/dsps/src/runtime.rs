//! The live runtime: a miniature Storm executing a topology on real
//! threads, with workers and shard-owned pipelines wired through the
//! in-process fabric.
//!
//! Each worker's tasks are split across [`LiveConfig::shards`] pipeline
//! threads by the stable map `task % shards`. A pipeline owns the whole
//! hot path for its slice — reader (its own fabric endpoint), routing
//! (per-task [`GroupingExec`] state), execution, and sink — with no
//! central dispatcher thread and no global queue. Traffic crosses
//! pipelines only when a grouping demands it (a destination task another
//! shard owns), through bounded per-shard inboxes with
//! [`SendError::Full`] backpressure; same-shard deliveries loop back
//! through a thread-local queue without touching a channel at all.
//!
//! The [`CommMode`] decides whether an emitted tuple becomes one
//! [`InstanceMessage`](crate::codec::InstanceMessage) per destination task
//! (Storm) or one [`WorkerMessage`](crate::codec::WorkerMessage) per
//! destination worker (Whale), and `zero_copy` selects RDMA-style shared
//! buffers vs TCP-style copies on the fabric.

use crate::acker::Acker;
use crate::codec::{
    self, DecodeError, InstanceMessage, InstanceMessageView, LazyTuple, RelayHeader, TupleView,
    WorkerMessage, WorkerMessageView,
};
use crate::grouping::GroupingExec;
use crate::messaging::{plan, CommMode};
use crate::operator::{Bolt, BoltFactory, Emitter, Spout, SpoutFactory};
use crate::pool::BufferPool;
use crate::scheduler::{Placement, WorkerId};
use crate::task::{ComponentId, TaskId};
use crate::topology::{ComponentKind, Grouping, Topology};
use crate::tuple::Tuple;
use bytes::{Buf, BufMut, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::{Mutex, RwLock};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whale_multicast::{
    build_nonblocking, plan_switch, run_switch_over_fabric_at, AdjustController, ControllerConfig,
    Decision, LinkPressure, MulticastTree, Node, TopoTreeBuilder, WorkloadMonitor,
};
use whale_net::{
    ClusterSpec, EndpointId, FabricKind, FabricPath, FaultFabric, FaultPlan, LinkTracker,
    LogConfig, PartitionLog, Payload, SendError, SendPolicy, TopologyConfig,
};
use whale_sim::{SimDuration, SimTime};

/// Message tags on the live fabric.
const TAG_INSTANCE: u8 = 1;
const TAG_WORKER: u8 = 2;
const TAG_EOS: u8 = 3;
/// A broadcast tuple traveling through the non-blocking multicast tree:
/// `origin_worker | to_component | node_index | data item`.
const TAG_RELAY: u8 = 4;
/// End-of-stream traveling the same tree path as relayed data, so it
/// cannot overtake in-flight tuples:
/// `origin_worker | to_component | node_index | src_task`.
const TAG_RELAY_EOS: u8 = 5;
/// An acker-tracked worker-oriented frame: `tracked u64 | WorkerMessage`.
/// Anchors are not carried: each side derives the per-destination anchor
/// from `(tracked, dst_task)` with [`anchor_for`].
const TAG_WORKER_TRACKED: u8 = 6;
/// An acker-tracked instance-oriented frame: `tracked u64 | InstanceMessage`.
const TAG_INSTANCE_TRACKED: u8 = 7;

/// Tracked ids pack a replay attempt above [`ROOT_BITS`] bits of root id,
/// so every replay re-registers under a fresh ledger key while sinks
/// dedup on the stable root.
const ROOT_BITS: u32 = 48;
const ROOT_MASK: u64 = (1 << ROOT_BITS) - 1;

/// The root id a tracked id belongs to (stable across replays).
fn root_of(tracked: u64) -> u64 {
    tracked & ROOT_MASK
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The XOR-ledger anchor of destination `dst` within tree `tracked` — a
/// pure function, so the sender arms the ledger and the receiver acks it
/// without the anchor ever traveling on the wire. Never zero (a zero
/// anchor would be an XOR no-op).
fn anchor_for(tracked: u64, dst: TaskId) -> u64 {
    splitmix64(tracked ^ splitmix64(dst.0 as u64 + 1)).max(1)
}

/// Acker bookkeeping attached to a tracked tuple delivery.
#[derive(Clone, Copy, Debug)]
struct AckTag {
    /// Ledger key: `attempt << ROOT_BITS | root`.
    tracked: u64,
    /// This destination's XOR anchor.
    anchor: u64,
}

/// What an executor receives in its incoming queue.
enum ExecMsg {
    /// A data tuple — locally emitted ones arrive owned, received wire
    /// frames arrive as lazy views anchored to the shared receive buffer
    /// (the handle memoizes, so a worker still decodes at most once) —
    /// with acker bookkeeping when the run tracks deliveries.
    Data(LazyTuple, Option<AckTag>),
    /// End-of-stream from one upstream task.
    Eos(TaskId),
}

/// What a task pushes to its dedicated sending thread.
enum SendMsg {
    /// An emitted tuple to route and transmit, with its tracked id when
    /// the run tracks deliveries.
    Data(Tuple, Option<u64>),
    /// The task has finished: flush and broadcast EOS, then exit.
    Eos,
}

/// Per-task routing state: one [`GroupingExec`] per downstream edge plus
/// reusable destination scratch, so steady-state routing allocates
/// nothing (`route_into` fills `scratch` in place; `All` never clones
/// its target list).
struct Groupings {
    edges: Vec<(ComponentId, GroupingExec)>,
    scratch: Vec<TaskId>,
}

/// Where a task's emissions go: routed inline on the task's own thread,
/// or queued to its dedicated sending thread (Storm's executor design).
enum Outbox {
    Inline(Groupings),
    Queued(Sender<SendMsg>),
}

impl Outbox {
    fn emit(&mut self, routing: &Routing, src: TaskId, tuple: Tuple, tracked: Option<u64>) {
        match self {
            Outbox::Inline(groupings) => routing.emit(src, groupings, tuple, tracked),
            Outbox::Queued(tx) => {
                let _ = tx.send(SendMsg::Data(tuple, tracked));
            }
        }
    }

    /// Signal end-of-stream: inline outboxes broadcast immediately; queued
    /// ones enqueue the EOS behind any pending data so ordering holds.
    fn finish(self, routing: &Routing, src: TaskId) {
        match self {
            Outbox::Inline(_) => routing.broadcast_eos(src),
            Outbox::Queued(tx) => {
                let _ = tx.send(SendMsg::Eos);
            }
        }
    }
}

/// The dedicated sending thread: owns the task's grouping state, drains
/// the send queue, serializes, and transmits.
fn sender_loop(task: TaskId, comp: ComponentId, rx: Receiver<SendMsg>, routing: &Routing) {
    let mut groupings = build_groupings(&routing.topology, task, comp);
    while let Ok(msg) = rx.recv() {
        match msg {
            SendMsg::Data(t, tracked) => routing.emit(task, &mut groupings, t, tracked),
            SendMsg::Eos => {
                routing.broadcast_eos(task);
                return;
            }
        }
    }
}

/// Build a task's outbox (and its sender thread when configured).
fn make_outbox(
    routing: &Arc<Routing>,
    task: TaskId,
    comp: ComponentId,
    sender_handles: &mut Vec<std::thread::JoinHandle<()>>,
) -> Outbox {
    if routing.config.dedicated_senders {
        let (tx, rx) = unbounded();
        let routing = Arc::clone(routing);
        sender_handles.push(std::thread::spawn(move || {
            sender_loop(task, comp, rx, &routing)
        }));
        Outbox::Queued(tx)
    } else {
        Outbox::Inline(build_groupings(&routing.topology, task, comp))
    }
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Number of simulated machines (= worker processes).
    pub machines: u32,
    /// Instance-oriented (Storm) or worker-oriented (Whale) messaging.
    pub comm_mode: CommMode,
    /// RDMA-style shared buffers (true) vs TCP-style copies (false).
    pub zero_copy: bool,
    /// Relay all-grouped broadcasts through a non-blocking multicast tree
    /// over the workers with this maximum out-degree, instead of the
    /// source sending to every worker directly. Requires
    /// [`CommMode::WorkerOriented`].
    pub multicast_d_star: Option<u32>,
    /// Re-plan the relay tree's out-degree at runtime from live workload
    /// samples (the paper's workload monitor + self-adjusting
    /// controller), switching between epoch-versioned tree generations
    /// without stopping the data plane. Implies the relay path; when
    /// both this and `multicast_d_star` are set, `multicast_d_star`
    /// seeds the initial degree. Requires [`CommMode::WorkerOriented`].
    pub multicast_adaptive: Option<AdaptiveConfig>,
    /// Shard-owned pipelines per worker. Each worker's tasks are split
    /// across this many pipeline threads by the stable map
    /// `task % shards` (mirroring `RingConfig::flusher_shards`); every
    /// pipeline owns its own fabric endpoint, routing state, and
    /// executors, so the per-worker receive path scales with cores
    /// instead of serializing behind one dispatcher. `1` (the default)
    /// runs one pipeline per worker. Values are clamped to at least 1.
    pub shards: u32,
    /// Capacity of each pipeline's cross-shard inbox. Deliveries to a
    /// task another shard owns go through this bounded queue; a full
    /// inbox backpressures the sender under [`LiveConfig::send`] and
    /// drops loudly (`send_failed`) if it never clears.
    pub shard_inbox_capacity: usize,
    /// Storm's executor architecture (§4): each task has a dedicated
    /// sending thread draining its send queue, so serialization and
    /// transmission happen off the worker thread. `false` = emit inline.
    pub dedicated_senders: bool,
    /// Which live transport carries inter-worker frames: synchronous
    /// per-send delivery, or descriptors posted to per-endpoint rings and
    /// flushed in MMS/WTL batches (the paper's stream slicing, §4).
    pub fabric: FabricKind,
    /// Bounded retry schedule for backpressured sends. The default parks
    /// up to 5 s before declaring a frame failed; a run can never
    /// livelock on a dead flusher.
    pub send: SendPolicy,
    /// At-least-once delivery tracking (Storm's XOR acker wired into the
    /// live path). `None` (the default) runs exactly the untracked wire
    /// protocol; `Some` tracks every spout emission to its first-hop
    /// subscribers, replays expired trees, and dedups replays at the
    /// executors by root id.
    pub ack: Option<AckConfig>,
    /// Deterministic fault injection: when set, the run's fabric is
    /// wrapped in a [`FaultFabric`] driven by this plan, and the injected
    /// fault counters surface in the [`RunReport`].
    pub fault: Option<FaultPlan>,
    /// Persistent partition log behind the send path: every
    /// point-to-point data frame is appended to a per-endpoint
    /// [`PartitionLog`] *before* the fabric send (write-ahead, so frames
    /// rejected inside a crash window are still replayable). On tracked
    /// runs the acker's resolved roots drive the log's GC watermark, and
    /// a crashed endpoint with a scheduled [`whale_net::EndpointRestart`]
    /// gets its slice replayed from the log once it rejoins — executors'
    /// root-id dedup absorbs the overlap with live and acker-replayed
    /// deliveries, so delivery upgrades to effectively-once without
    /// spending the acker's replay budget. Relay-tree frames are not
    /// logged (crash recovery on relay runs stays with the acker).
    pub log: Option<LogConfig>,
    /// Liveness backstop: executors give up waiting for traffic (EOS
    /// included) this long after the run starts, so a lost EOS frame can
    /// degrade the run but never hang it. `None` waits forever.
    pub run_deadline: Option<Duration>,
    /// Snapshot the run's counters at this interval into
    /// [`RunReport::timeline`], so long runs show *when* things happened
    /// rather than only end-of-run totals. `None` records no timeline.
    pub monitor_interval: Option<Duration>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            machines: 4,
            comm_mode: CommMode::WorkerOriented,
            zero_copy: true,
            multicast_d_star: None,
            multicast_adaptive: None,
            shards: 1,
            shard_inbox_capacity: 4096,
            dedicated_senders: false,
            fabric: FabricKind::PerSend,
            send: SendPolicy::default(),
            ack: None,
            fault: None,
            log: None,
            run_deadline: None,
            monitor_interval: None,
        }
    }
}

/// Runtime tree adaptation (see [`LiveConfig::multicast_adaptive`]).
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Out-degree of the initial tree generation.
    pub initial_d: u32,
    /// Controller sampling interval (wall clock).
    pub interval: Duration,
    /// Transfer-queue capacity Q feeding the controller's waterline and
    /// the M/D/1 `d*` computation.
    pub queue_capacity: usize,
    /// EWMA smoothing factor for the arrival-rate estimate λ.
    pub alpha: f64,
    /// Per-hop emit-time estimate t_e (seconds) used until calibrated.
    pub t_e_default: f64,
    /// Bounded wait for the previous tree generation to drain before it
    /// is retired (and before EOS departs on the current tree). Frames a
    /// fault swallowed never drain; the grace keeps lossy runs moving.
    pub drain_grace: Duration,
    /// Drive the paper's coordinator/agent switch protocol over the data
    /// fabric for every reconfiguration (one representative session —
    /// all per-origin trees share a shape). Costs protocol round-trips;
    /// `false` applies the planned moves directly.
    pub switch_protocol: bool,
    /// Deterministic forced switches for benchmarks and tests: when
    /// `spout_emitted` crosses each threshold, switch to the paired
    /// degree. Non-empty bypasses the λ-driven controller.
    pub forced_switches: Vec<(u64, u32)>,
    /// Cluster topology awareness: when set, workers are placed on the
    /// configured rack layout, a [`LinkTracker`] attributes every fabric
    /// send to its (loopback / intra-rack / rack-uplink) link, the
    /// controller sees per-uplink pressure alongside λ, and — unless
    /// [`TopologyConfig::topo_trees`] is off — relay epochs are built
    /// rack-aware: subtrees stay intra-rack, each destination rack is
    /// entered over exactly one uplink edge, and switches route rack
    /// entries over the coolest uplinks. `None` keeps the single-rack
    /// topology-oblivious behavior.
    pub topology: Option<TopologyConfig>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_d: 2,
            interval: Duration::from_millis(2),
            queue_capacity: 1024,
            alpha: 0.3,
            t_e_default: 20e-6,
            drain_grace: Duration::from_millis(250),
            switch_protocol: false,
            forced_switches: Vec::new(),
            topology: None,
        }
    }
}

/// At-least-once tracking configuration (see [`LiveConfig::ack`]).
#[derive(Clone, Copy, Debug)]
pub struct AckConfig {
    /// How long a tuple tree may stay incomplete before it is failed and
    /// replayed (Storm's `topology.message.timeout.secs`).
    pub timeout: Duration,
    /// Replay attempts per tuple before giving up and counting it in
    /// [`RunReport::tuples_failed`].
    pub max_replays: u32,
    /// Hard bound on the spout's post-emission drain loop; pending
    /// tuples left at the deadline are failed, never waited on forever.
    pub drain_deadline: Duration,
    /// Sleep between drain-loop passes.
    pub poll_interval: Duration,
    /// Send each remote EOS frame this many times. The receiver's EOS
    /// accounting is idempotent, so redundancy costs only bytes and buys
    /// EOS survival under drop faults.
    pub eos_redundancy: u32,
}

impl Default for AckConfig {
    fn default() -> Self {
        AckConfig {
            timeout: Duration::from_millis(250),
            max_replays: 8,
            drain_deadline: Duration::from_secs(30),
            poll_interval: Duration::from_millis(1),
            eos_redundancy: 1,
        }
    }
}

/// Why a topology could not be built into a running worker set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// A spout component has no registered factory in [`Operators`].
    MissingSpout(String),
    /// A bolt component has no registered factory in [`Operators`].
    MissingBolt(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingSpout(name) => write!(f, "no spout registered for {name:?}"),
            BuildError::MissingBolt(name) => write!(f, "no bolt registered for {name:?}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Structured shutdown reason of a live run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Every thread completed normally.
    Clean,
    /// The topology never ran: validation failed before any thread was
    /// spawned, and the report carries all-zero counters.
    ConfigError(BuildError),
    /// The run completed and tore down in order, but lost something along
    /// the way: panicking threads, frames whose bounded send retries
    /// exhausted, tuples that ran out of replays, or executors that hit
    /// the run deadline still waiting for traffic. Nothing here is
    /// silent — every loss is counted.
    Degraded {
        /// Number of threads that panicked.
        thread_panics: u64,
        /// Frames dropped after the send policy's deadline exhausted.
        failed_sends: u64,
        /// Tracked tuples that exhausted their replay budget.
        failed_tuples: u64,
        /// Executors that exited on [`LiveConfig::run_deadline`].
        deadline_exits: u64,
    },
}

impl RunOutcome {
    /// True only for a fully clean completion.
    pub fn is_clean(&self) -> bool {
        *self == RunOutcome::Clean
    }
}

/// Counters collected during a live run.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Times a data item was serialized.
    pub serializations: AtomicU64,
    /// Wire frames encoded (each a pool acquire + fill). Redundant EOS
    /// copies and relay forwards resend existing bytes, so they grow
    /// fabric messages without growing this.
    pub frames_encoded: AtomicU64,
    /// Tuples executed, indexed by component id (filled at build).
    pub executed: Vec<AtomicU64>,
    /// Tuples emitted by spouts.
    pub spout_emitted: AtomicU64,
    /// Relay forwards performed by non-source workers (multicast tree).
    pub relay_forwards: AtomicU64,
    /// Malformed, truncated, unroutable fabric frames — and tuples whose
    /// grouping could not route them (e.g. a missing key field) —
    /// dropped by the pipelines instead of crashing the worker.
    pub dropped_frames: AtomicU64,
    /// Operator invocations (`next_tuple`/`execute`/`finish`) that
    /// panicked; the owning pipeline poisons the task and keeps running.
    pub op_panics: AtomicU64,
    /// Executor messages that crossed shard pipelines through a bounded
    /// inbox (same-shard deliveries loop back without a channel).
    pub cross_shard_msgs: AtomicU64,
    /// Executor deliveries made as lazy wire views (shared receive
    /// buffer, nothing decoded at dispatch).
    pub wire_tuples_lazy: AtomicU64,
    /// Lazy wire tuples an executor actually materialized (first touch
    /// of a tuple that crossed the operator boundary; fan-out sharing
    /// means this counts decodes, not deliveries).
    pub tuples_materialized: AtomicU64,
    /// Backpressure retries performed under the send policy.
    pub send_retries: AtomicU64,
    /// Frames dropped after the send policy's deadline exhausted.
    pub send_failed: AtomicU64,
    /// Executors that exited on the run deadline instead of EOS.
    pub deadline_exits: AtomicU64,
    /// Emission instants of sampled tuple ids (delivery-latency probes).
    pub emit_times: Mutex<HashMap<u64, Instant>>,
    /// Spout-to-execute delivery latencies of sampled tuples (ns).
    pub delivery_ns: Mutex<Vec<u64>>,
}

/// The shared at-least-once machinery of one tracked run.
struct AckRuntime {
    config: AckConfig,
    acker: Mutex<Acker>,
    /// Wall-clock epoch backing the acker's [`SimTime`] clock.
    epoch: Instant,
    /// Next root id (roots stay below `2^ROOT_BITS`).
    next_root: AtomicU64,
    /// Roots fully delivered (ledger hit zero, observed by their spout).
    acked: AtomicU64,
    /// Roots given up on after the replay budget or drain deadline.
    failed: AtomicU64,
    /// Replay emissions performed.
    replayed: AtomicU64,
    /// Duplicate deliveries suppressed at executors (same root seen
    /// again: a replay that raced the original, or a duplicated frame).
    dedup_dropped: AtomicU64,
}

impl AckRuntime {
    fn new(config: AckConfig) -> Self {
        let timeout = SimDuration::from_nanos((config.timeout.as_nanos() as u64).max(1));
        AckRuntime {
            config,
            acker: Mutex::new(Acker::new(timeout)),
            epoch: Instant::now(),
            next_root: AtomicU64::new(1),
            acked: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            dedup_dropped: AtomicU64::new(0),
        }
    }

    /// Now on the acker's clock.
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// The per-run partition-log machinery (see [`LiveConfig::log`]): one
/// write-ahead [`PartitionLog`] per flat destination endpoint, an
/// acknowledgement-driven GC watermark, and replay counters.
struct LogRuntime {
    /// One log per flat fabric endpoint, indexed by endpoint id.
    logs: Vec<Mutex<PartitionLog>>,
    /// Per-endpoint FIFO of `(seq, root)` for tracked appends. The GC
    /// watermark advances over the prefix whose roots have resolved.
    pending: Vec<Mutex<VecDeque<(u64, u64)>>>,
    /// Roots whose ledger resolved — acked, replay budget exhausted, or
    /// force-failed at the drain deadline. Their log records are dead
    /// weight: replaying them is at worst a dedup-dropped duplicate.
    resolved: Mutex<HashSet<u64>>,
    /// Records re-sent from the log after an endpoint restart.
    replayed_records: AtomicU64,
    /// Bytes re-sent from the log after an endpoint restart.
    replayed_bytes: AtomicU64,
}

impl LogRuntime {
    fn new(config: LogConfig, n_flat: usize) -> Self {
        LogRuntime {
            logs: (0..n_flat)
                .map(|_| Mutex::new(PartitionLog::new(config)))
                .collect(),
            pending: (0..n_flat).map(|_| Mutex::new(VecDeque::new())).collect(),
            resolved: Mutex::new(HashSet::new()),
            replayed_records: AtomicU64::new(0),
            replayed_bytes: AtomicU64::new(0),
        }
    }

    /// Write one encoded frame through the destination's log (called
    /// before the fabric send). Endpoints outside the data range (switch
    /// protocol endpoints sit above it) are not logged.
    fn append(&self, to: EndpointId, tracked: Option<u64>, bytes: &[u8]) {
        let Some(log) = self.logs.get(to.0 as usize) else {
            return;
        };
        let seq = log.lock().append(bytes);
        if let Some(tr) = tracked {
            self.pending[to.0 as usize]
                .lock()
                .push_back((seq, root_of(tr)));
        }
    }

    /// Mark a root's ledger resolved, unblocking log GC past its records.
    fn note_resolved(&self, root: u64) {
        self.resolved.lock().insert(root);
    }

    /// One GC pass: per endpoint, advance the watermark over the
    /// resolved prefix of tracked appends and truncate the log to it.
    fn gc_pass(&self) {
        let resolved = self.resolved.lock();
        for (idx, pend) in self.pending.iter().enumerate() {
            let mut pend = pend.lock();
            let mut watermark = None;
            while let Some(&(seq, root)) = pend.front() {
                if !resolved.contains(&root) {
                    break;
                }
                watermark = Some(seq + 1);
                pend.pop_front();
            }
            if let Some(wm) = watermark {
                self.logs[idx].lock().truncate_to(wm);
            }
        }
    }

    fn fold(&self, f: impl Fn(&PartitionLog) -> u64) -> u64 {
        self.logs.iter().map(|l| f(&l.lock())).sum()
    }

    fn appended_records(&self) -> u64 {
        self.fold(|l| l.appended_records())
    }

    fn appended_bytes(&self) -> u64 {
        self.fold(|l| l.appended_bytes())
    }

    fn gcd_bytes(&self) -> u64 {
        self.fold(|l| l.gcd_bytes())
    }

    fn retained_bytes(&self) -> u64 {
        self.fold(|l| l.retained_bytes())
    }

    fn torn_tails(&self) -> u64 {
        self.fold(|l| l.torn_tails())
    }

    fn gc_watermark(&self) -> u64 {
        self.logs
            .iter()
            .map(|l| l.lock().gc_watermark())
            .max()
            .unwrap_or(0)
    }
}

/// Every `LATENCY_SAMPLE`-th tracked tuple is timed from spout emission to
/// each bolt execution (wall clock).
const LATENCY_SAMPLE: u64 = 8;

/// Result of a completed live run.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
    /// Data-item serializations performed.
    pub serializations: u64,
    /// Tuples executed per component (by component id index).
    pub executed: Vec<u64>,
    /// Tuples emitted by spouts.
    pub spout_emitted: u64,
    /// Network messages through the fabric.
    pub fabric_messages: u64,
    /// Bytes copied (TCP semantics).
    pub copied_bytes: u64,
    /// Bytes shared (RDMA semantics).
    pub shared_bytes: u64,
    /// Relay forwards performed by non-source workers (multicast tree).
    pub relay_forwards: u64,
    /// Wire frames encoded (pool acquire + fill). Redundant EOS copies
    /// and relay forwards resend existing bytes without re-encoding.
    pub frames_encoded: u64,
    /// Wire bytes sent on the relay path (origin sends + forwards); the
    /// remainder of the fabric byte totals moved point-to-point.
    pub relay_bytes: u64,
    /// Relay frames dropped because their tree generation was retired.
    pub relay_stale_drops: u64,
    /// Bytes delivered over rack uplinks — the oversubscribed links a
    /// topology-aware tree economizes (0 unless a topology is
    /// configured).
    pub uplink_bytes: u64,
    /// Delivered bytes per link (`LinkId` rendered, bytes), every link
    /// with traffic. Sums to `copied_bytes + shared_bytes`: each send
    /// traverses exactly one link, so per-link totals tile the wire
    /// total. Empty unless a topology is configured.
    pub link_bytes: Vec<(String, u64)>,
    /// Runtime tree reconfigurations performed.
    pub relay_switches: u64,
    /// Per-instance connection moves across all reconfigurations.
    pub relay_switch_moves: u64,
    /// Final relay tree generation (0 when no switch happened).
    pub relay_epoch: u32,
    /// Final relay out-degree (0 when the relay path was off).
    pub relay_d_star: u32,
    /// Received relay frames by tree depth of the receiving node (last
    /// bucket absorbs deeper hops); empty when the relay path was off.
    pub relay_depths: Vec<u64>,
    /// Sampled per-hop relay forward latencies (receipt to last child
    /// send, ns), unordered.
    pub relay_forward_ns: Vec<u64>,
    /// Malformed or unroutable fabric frames (and unroutable tuples)
    /// dropped by the pipelines.
    pub dropped_frames: u64,
    /// Panicked operator invocations plus panicked runtime threads; a
    /// panicking operator poisons its task, and the run still joins
    /// every thread and tears the fabric down in order.
    pub thread_panics: u64,
    /// Pipeline shards per worker the run executed with.
    pub shards: u64,
    /// Executor messages that crossed shard pipelines through bounded
    /// inboxes (0 when every delivery stayed shard-local).
    pub cross_shard_msgs: u64,
    /// Executor deliveries made as lazy wire views — received frames
    /// dispatched without decoding anything.
    pub wire_tuples_lazy: u64,
    /// Lazy wire tuples materialized on first executor touch; the gap to
    /// `wire_tuples_lazy` is decode work the view layer never did.
    pub tuples_materialized: u64,
    /// Sends that failed at the fabric (unknown endpoint, backpressure
    /// that never cleared, or a receiver dropped during teardown). Failed
    /// sends never count toward the byte totals.
    pub send_errors: u64,
    /// Batches the transport flushed (0 on the per-send path).
    pub batches_flushed: u64,
    /// Mean messages per flushed batch (0 on the per-send path).
    pub mean_batch_size: f64,
    /// Encode-buffer pool acquires served from a reused buffer.
    pub pool_hits: u64,
    /// Encode-buffer pool acquires that had to allocate.
    pub pool_misses: u64,
    /// Most encode buffers outstanding at once during the run.
    pub pool_high_watermark: u64,
    /// Pool hits over total acquires (≈ 1.0 once warm: the steady-state
    /// hot path allocates nothing).
    pub pool_hit_rate: f64,
    /// Backpressure retries performed under the send policy.
    pub send_retries: u64,
    /// Frames dropped after the send policy's deadline exhausted (these
    /// degrade the run; teardown races do not).
    pub send_failed: u64,
    /// Executors that exited on [`LiveConfig::run_deadline`].
    pub deadline_exits: u64,
    /// Tracked tuples fully delivered (ack runs only).
    pub tuples_acked: u64,
    /// Tracked tuples given up on after the replay budget (ack runs only).
    pub tuples_failed: u64,
    /// Replay emissions performed (ack runs only).
    pub tuples_replayed: u64,
    /// Duplicate deliveries suppressed at executors by root-id dedup.
    pub dedup_dropped: u64,
    /// Frames silently dropped by injected drop faults.
    pub fault_drops: u64,
    /// Frames duplicated by injected faults.
    pub fault_duplicates: u64,
    /// Frames parked by injected delay faults.
    pub fault_delayed: u64,
    /// Sends rejected by injected `Full` bursts.
    pub fault_full_injected: u64,
    /// Frames lost inside injected partition windows.
    pub fault_partition_drops: u64,
    /// Sends rejected because an injected crash took the destination.
    pub fault_crashed_sends: u64,
    /// Data frames written through the partition log before the fabric
    /// (0 unless [`LiveConfig::log`] is set).
    pub log_appended_records: u64,
    /// Payload bytes written through the partition log.
    pub log_appended_bytes: u64,
    /// Frames re-sent from the log after an endpoint restart.
    pub log_replayed_records: u64,
    /// Bytes re-sent from the log after an endpoint restart.
    pub log_replayed_bytes: u64,
    /// Log bytes reclaimed by acker-watermark garbage collection.
    pub log_gcd_bytes: u64,
    /// Highest per-endpoint log GC watermark (sequence number).
    pub log_gc_watermark: u64,
    /// Log bytes still resident at shutdown.
    pub log_retained_bytes: u64,
    /// Torn tails healed when recovering persisted log images.
    pub log_torn_tails: u64,
    /// Periodic counter snapshots (empty unless
    /// [`LiveConfig::monitor_interval`] is set).
    pub timeline: Vec<TimelineSample>,
    /// Structured shutdown reason.
    pub outcome: RunOutcome,
    /// Sampled spout-to-execute delivery latencies (ns), unordered.
    pub delivery_ns: Vec<u64>,
}

/// One periodic snapshot of a live run's counters (see
/// [`LiveConfig::monitor_interval`]).
#[derive(Clone, Copy, Debug)]
pub struct TimelineSample {
    /// Wall-clock offset from run start.
    pub at: Duration,
    /// Tuples emitted by spouts so far.
    pub spout_emitted: u64,
    /// Tuples executed so far (all components).
    pub executed: u64,
    /// Fabric messages delivered so far.
    pub fabric_messages: u64,
    /// Fabric send errors so far (includes injected faults).
    pub send_errors: u64,
    /// Backpressure retries so far.
    pub send_retries: u64,
    /// Tracked tuples acked so far (0 on untracked runs).
    pub acked: u64,
    /// Tracked tuples failed so far (0 on untracked runs).
    pub failed: u64,
    /// Replays performed so far (0 on untracked runs).
    pub replayed: u64,
}

impl RunReport {
    /// Mean sampled delivery latency.
    pub fn mean_delivery(&self) -> std::time::Duration {
        if self.delivery_ns.is_empty() {
            return std::time::Duration::ZERO;
        }
        let sum: u64 = self.delivery_ns.iter().sum();
        std::time::Duration::from_nanos(sum / self.delivery_ns.len() as u64)
    }

    /// p99 sampled delivery latency.
    pub fn p99_delivery(&self) -> std::time::Duration {
        if self.delivery_ns.is_empty() {
            return std::time::Duration::ZERO;
        }
        let mut v = self.delivery_ns.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * 0.99).round() as usize;
        std::time::Duration::from_nanos(v[idx])
    }

    /// Export the run as a [`MetricsRegistry`] snapshot under `dsps.*`:
    /// dispatch/send/relay counters, fabric byte split, and the sampled
    /// delivery-latency distribution as a percentile summary.
    pub fn metrics(&self) -> whale_sim::MetricsRegistry {
        use whale_sim::{Histogram, MetricsRegistry};
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("dsps.elapsed_secs", self.elapsed.as_secs_f64());
        reg.set_counter("dsps.serializations", self.serializations);
        reg.set_counter("dsps.spout_emitted", self.spout_emitted);
        reg.set_counter("dsps.frames_encoded", self.frames_encoded);
        reg.set_counter("dsps.relay_forwards", self.relay_forwards);
        // The relay/direct byte split: what traveled the multicast tree
        // vs point-to-point. (A fault-swallowed relay frame is charged
        // here but never reached the fabric totals, hence saturating.)
        let wire = self.copied_bytes + self.shared_bytes;
        reg.set_counter("dsps.relay.bytes", self.relay_bytes);
        reg.set_counter("dsps.direct_bytes", wire.saturating_sub(self.relay_bytes));
        reg.set_counter("dsps.relay.stale_drops", self.relay_stale_drops);
        reg.set_counter("dsps.links.uplink_bytes", self.uplink_bytes);
        for (link, bytes) in &self.link_bytes {
            reg.set_counter(&format!("dsps.links.bytes.{link}"), *bytes);
        }
        reg.set_counter("dsps.relay.switches", self.relay_switches);
        reg.set_counter("dsps.relay.switch_moves", self.relay_switch_moves);
        reg.set_gauge("dsps.relay.epoch", self.relay_epoch as f64);
        reg.set_gauge("dsps.relay.d_star", self.relay_d_star as f64);
        for (d, &n) in self.relay_depths.iter().enumerate() {
            if n > 0 {
                reg.set_counter(&format!("dsps.relay.depth_{d}"), n);
            }
        }
        if !self.relay_forward_ns.is_empty() {
            let mut h = Histogram::new();
            for &ns in &self.relay_forward_ns {
                h.record(ns);
            }
            reg.set_summary("dsps.relay.forward_ns", &h);
        }
        reg.set_counter("dsps.dropped_frames", self.dropped_frames);
        reg.set_counter("dsps.thread_panics", self.thread_panics);
        reg.set_gauge("dsps.shards", self.shards as f64);
        reg.set_counter("dsps.cross_shard_msgs", self.cross_shard_msgs);
        reg.set_counter("dsps.fabric.messages", self.fabric_messages);
        reg.set_counter("dsps.fabric.copied_bytes", self.copied_bytes);
        reg.set_counter("dsps.fabric.shared_bytes", self.shared_bytes);
        reg.set_counter("dsps.fabric.send_errors", self.send_errors);
        reg.set_counter("dsps.fabric.batches_flushed", self.batches_flushed);
        reg.set_gauge("dsps.fabric.mean_batch_size", self.mean_batch_size);
        reg.set_counter("dsps.pool.hits", self.pool_hits);
        reg.set_counter("dsps.pool.misses", self.pool_misses);
        reg.set_gauge("dsps.pool.high_watermark", self.pool_high_watermark as f64);
        reg.set_gauge("dsps.pool.hit_rate", self.pool_hit_rate);
        reg.set_counter("dsps.send.retries", self.send_retries);
        reg.set_counter("dsps.send.failed", self.send_failed);
        reg.set_counter("dsps.deadline_exits", self.deadline_exits);
        reg.set_counter("dsps.ack.acked", self.tuples_acked);
        reg.set_counter("dsps.ack.failed", self.tuples_failed);
        reg.set_counter("dsps.ack.replayed", self.tuples_replayed);
        reg.set_counter("dsps.ack.dedup_dropped", self.dedup_dropped);
        reg.set_counter("dsps.fault.drops", self.fault_drops);
        reg.set_counter("dsps.fault.duplicates", self.fault_duplicates);
        reg.set_counter("dsps.fault.delayed", self.fault_delayed);
        reg.set_counter("dsps.fault.full_injected", self.fault_full_injected);
        reg.set_counter("dsps.fault.partition_drops", self.fault_partition_drops);
        reg.set_counter("dsps.fault.crashed_sends", self.fault_crashed_sends);
        reg.set_counter("dsps.log.appended_records", self.log_appended_records);
        reg.set_counter("dsps.log.appended_bytes", self.log_appended_bytes);
        reg.set_counter("dsps.log.replayed_records", self.log_replayed_records);
        reg.set_counter("dsps.log.replayed_bytes", self.log_replayed_bytes);
        reg.set_counter("dsps.log.gcd_bytes", self.log_gcd_bytes);
        reg.set_counter("dsps.log.torn_tails", self.log_torn_tails);
        reg.set_gauge("dsps.log.gc_watermark", self.log_gc_watermark as f64);
        reg.set_gauge("dsps.log.retained_bytes", self.log_retained_bytes as f64);
        if !self.timeline.is_empty() {
            use whale_sim::TimeSeries;
            type SampleField = fn(&TimelineSample) -> u64;
            let mut by_metric: Vec<(&str, SampleField)> = Vec::new();
            by_metric.push(("dsps.timeline.spout_emitted", |s| s.spout_emitted));
            by_metric.push(("dsps.timeline.executed", |s| s.executed));
            by_metric.push(("dsps.timeline.fabric_messages", |s| s.fabric_messages));
            by_metric.push(("dsps.timeline.send_errors", |s| s.send_errors));
            by_metric.push(("dsps.timeline.send_retries", |s| s.send_retries));
            by_metric.push(("dsps.timeline.acked", |s| s.acked));
            by_metric.push(("dsps.timeline.failed", |s| s.failed));
            by_metric.push(("dsps.timeline.replayed", |s| s.replayed));
            for (name, f) in by_metric {
                let mut ts = TimeSeries::new();
                for s in &self.timeline {
                    ts.push(SimTime::from_nanos(s.at.as_nanos() as u64), f(s) as f64);
                }
                reg.set_series(name, &ts);
            }
        }
        reg.set_gauge(
            "dsps.clean",
            if self.outcome.is_clean() { 1.0 } else { 0.0 },
        );
        for (i, &n) in self.executed.iter().enumerate() {
            reg.set_counter(&format!("dsps.executed.component_{i}"), n);
        }
        let mut h = Histogram::new();
        for &ns in &self.delivery_ns {
            h.record(ns);
        }
        reg.set_summary("dsps.delivery_ns", &h);
        reg
    }
}

/// Per-component operator implementations.
#[derive(Default)]
pub struct Operators {
    spouts: HashMap<String, SpoutFactory>,
    bolts: HashMap<String, BoltFactory>,
}

impl Operators {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a spout factory for a component name.
    pub fn spout(
        mut self,
        name: &str,
        f: impl Fn(u32) -> Box<dyn Spout> + Send + Sync + 'static,
    ) -> Self {
        self.spouts.insert(name.to_string(), Box::new(f));
        self
    }

    /// Register a bolt factory for a component name.
    pub fn bolt(
        mut self,
        name: &str,
        f: impl Fn(u32) -> Box<dyn Bolt> + Send + Sync + 'static,
    ) -> Self {
        self.bolts.insert(name.to_string(), Box::new(f));
        self
    }
}

/// Shared, immutable routing context used by every sender thread.
struct Routing {
    topology: Topology,
    placement: Placement,
    config: LiveConfig,
    fabric: Arc<dyn FabricPath>,
    /// Encode scratch buffers, reused across frames: the steady-state hot
    /// path allocates nothing (see [`BufferPool`]).
    pool: BufferPool,
    /// Cross-shard inboxes, indexed by flat shard id
    /// (`worker * shards + task % shards`). Bounded: a full inbox
    /// backpressures the sender under the run's [`SendPolicy`].
    shard_inboxes: Vec<Sender<(TaskId, ExecMsg)>>,
    /// Pipeline threads per worker (`LiveConfig::shards`, clamped ≥ 1).
    shards: u32,
    stats: Arc<RunStats>,
    /// At-least-once machinery; `None` runs untracked.
    ack: Option<AckRuntime>,
    /// Epoch-versioned multicast relay structures; `None` sends
    /// broadcasts directly.
    relay: Option<RelayState>,
    /// Per-link load accounting over the cluster topology; `None` unless
    /// [`AdaptiveConfig::topology`] is set. Installed on the outermost
    /// fabric, so every send is attributed to exactly one link.
    tracker: Option<Arc<LinkTracker>>,
    /// Write-ahead partition logs for crash recovery; `None` runs
    /// unlogged (see [`LiveConfig::log`]).
    log: Option<LogRuntime>,
}

/// Node index i of origin worker `origin` maps to this worker id.
fn relay_node_worker(origin: u32, node: u32, n_workers: u32) -> WorkerId {
    // Workers ascending, skipping the origin.
    let id = if node < origin { node } else { node + 1 };
    debug_assert!(id < n_workers);
    WorkerId(id)
}

/// Inverse of [`relay_node_worker`]: the node index of `worker` in
/// `origin`'s tree, or `None` for the origin itself. Because the mapping
/// is a pure function of `(origin, worker)`, relay frames never carry a
/// node index — every receiver derives its own — which is what makes one
/// wire buffer valid for every child.
fn relay_node_of_worker(origin: u32, worker: u32) -> Option<u32> {
    match worker.cmp(&origin) {
        std::cmp::Ordering::Less => Some(worker),
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Greater => Some(worker - 1),
    }
}

/// Relay-depth histogram buckets (hop distance from the origin; the last
/// bucket absorbs deeper hops).
const DEPTH_BUCKETS: usize = 16;

/// One immutable generation of relay structures: every origin worker's
/// tree over the *other* workers (node index i = the i-th worker id
/// excluding the origin), all built with the same out-degree.
///
/// Each generation owns its in-flight send accounting: the counter is
/// charged against the epoch a frame was stamped with, travels with the
/// generation through demotion, and dies with it — so a retired
/// generation's leftover charges can never bleed into a fresh epoch (the
/// old slot-aliased array needed extra slots and a reset to approximate
/// this).
struct RelayEpoch {
    epoch: u32,
    d_star: u32,
    trees: Vec<MulticastTree>,
    /// Relay frames sent minus received on this generation. A node
    /// forwards to its children *before* decrementing its own receipt,
    /// so zero means the generation is genuinely drained (frames a fault
    /// dropped never decrement; the bounded grace covers those).
    inflight: AtomicI64,
}

impl RelayEpoch {
    /// Charge one in-flight frame — called *before* the send, so the
    /// generation can never read drained while an accepted frame sits
    /// uncounted in a fabric queue. Undo with [`Self::note_received`] if
    /// the fabric rejects the send.
    fn note_sent(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    fn note_received(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn build_relay_epoch(epoch: u32, d: u32, workers: u32) -> RelayEpoch {
    RelayEpoch {
        epoch,
        d_star: d,
        trees: (0..workers)
            .map(|_| build_nonblocking(workers.saturating_sub(1), d))
            .collect(),
        inflight: AtomicI64::new(0),
    }
}

/// Rack-aware sibling of [`build_relay_epoch`]: each origin's tree is
/// built over the placement's rack map (node i of origin o lives in the
/// rack of `relay_node_worker(o, i)`'s machine), with the current
/// per-rack uplink loads steering which uplinks carry rack entries.
fn build_relay_epoch_topo(
    epoch: u32,
    d: u32,
    placement: &Placement,
    spec: &ClusterSpec,
    uplink_loads: &[u64],
) -> RelayEpoch {
    let workers = placement.workers();
    let rack_of_worker =
        |w: WorkerId| spec.rack_of(placement.machine_of_worker(w)).0;
    let trees = (0..workers)
        .map(|origin| {
            let node_racks: Vec<u32> = (0..workers.saturating_sub(1))
                .map(|node| rack_of_worker(relay_node_worker(origin, node, workers)))
                .collect();
            TopoTreeBuilder::new(d.max(1), rack_of_worker(WorkerId(origin)), node_racks)
                .with_uplink_load(uplink_loads)
                .build()
        })
        .collect();
    RelayEpoch {
        epoch,
        d_star: d,
        trees,
        inflight: AtomicI64::new(0),
    }
}

/// The live relay plane: the current tree generation behind a swap slot,
/// the previous generation draining out, and the relay-path counters.
///
/// Epoch lifecycle: senders stamp the current epoch into every relay
/// frame; a switch publishes a new generation and demotes the old one to
/// `prev`, which keeps accepting its in-flight frames until drained (or
/// until the bounded grace expires). Frames from any older generation
/// are dropped and counted in `stale_drops` — on tracked runs the acker
/// replays them on the current tree, so a switch can delay but never
/// silently lose a tracked tuple.
struct RelayState {
    current: RwLock<Arc<RelayEpoch>>,
    prev: RwLock<Option<Arc<RelayEpoch>>>,
    /// Frames dropped because their epoch was already retired.
    stale_drops: AtomicU64,
    /// Tree reconfigurations performed.
    switches: AtomicU64,
    /// Per-instance connection moves across all reconfigurations.
    switch_moves: AtomicU64,
    /// Wire bytes sent on the relay path (origin sends + forwards).
    relay_bytes: AtomicU64,
    /// Received relay frames by tree depth of the receiving node.
    depth_counts: [AtomicU64; DEPTH_BUCKETS],
    /// Sampled per-hop forward latencies (receipt to last child send).
    forward_ns: Mutex<Vec<u64>>,
    /// Forward events so far (drives latency sampling).
    forward_events: AtomicU64,
}

impl RelayState {
    fn new(initial: RelayEpoch) -> Self {
        RelayState {
            current: RwLock::new(Arc::new(initial)),
            prev: RwLock::new(None),
            stale_drops: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            switch_moves: AtomicU64::new(0),
            relay_bytes: AtomicU64::new(0),
            depth_counts: [(); DEPTH_BUCKETS].map(|_| AtomicU64::new(0)),
            forward_ns: Mutex::new(Vec::new()),
            forward_events: AtomicU64::new(0),
        }
    }

    fn current(&self) -> Arc<RelayEpoch> {
        Arc::clone(&self.current.read())
    }

    /// The generation a frame's epoch belongs to: current, draining
    /// previous, or `None` (retired — the frame is stale).
    fn lookup(&self, epoch: u32) -> Option<Arc<RelayEpoch>> {
        let cur = self.current.read();
        if cur.epoch == epoch {
            return Some(Arc::clone(&cur));
        }
        drop(cur);
        let prev = self.prev.read();
        prev.as_ref().filter(|p| p.epoch == epoch).map(Arc::clone)
    }

    fn note_bytes(&self, bytes: usize) {
        self.relay_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn record_depth(&self, depth: u32) {
        let bucket = (depth as usize).min(DEPTH_BUCKETS - 1);
        self.depth_counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Retire the previous generation if it has drained. Returns true
    /// when no previous generation remains.
    fn try_retire_prev(&self) -> bool {
        let mut prev = self.prev.write();
        match prev.as_ref() {
            None => true,
            Some(p) => {
                // Drained means no counted frames in flight AND nobody
                // else holds the generation (senders keep the Arc from
                // snapshot until after their note_sent; receivers keep
                // theirs through forwarding) — so a frame between
                // snapshot and charge can't slip through retirement. The
                // counter is the generation's own, so retirement is
                // exact: it fires the moment *this* epoch's queue is
                // empty, not when a shared slot happens to read zero.
                if p.inflight.load(Ordering::Relaxed) <= 0 && Arc::strong_count(p) == 1 {
                    *prev = None;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Bounded wait for the previous generation to drain; frames a fault
    /// swallowed never decrement the slot, so the grace keeps a lossy run
    /// from wedging the switch (tracked replays recover the loss).
    fn await_prev_drained(&self, grace: Duration) -> bool {
        let deadline = Instant::now() + grace;
        loop {
            if self.try_retire_prev() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Install a new generation: the current one becomes `prev` (any
    /// unretired `prev` is force-retired — its remaining frames become
    /// stale and their charges die with the dropped generation).
    fn publish(&self, next: Arc<RelayEpoch>) {
        let mut cur = self.current.write();
        let old = std::mem::replace(&mut *cur, next);
        *self.prev.write() = Some(old);
    }
}

thread_local! {
    /// Flat shard id of the pipeline running on this thread, if any.
    /// Deliveries targeting this shard skip the inbox and loop back
    /// through [`LOCAL_QUEUE`]; threads without a pipeline (dedicated
    /// senders, tests) always deliver through the inboxes.
    static CURRENT_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
    /// Same-shard deliveries looped back without touching any channel;
    /// the owning pipeline drains it after every operator step.
    static LOCAL_QUEUE: RefCell<VecDeque<(TaskId, ExecMsg)>> =
        const { RefCell::new(VecDeque::new()) };
}

impl Routing {
    /// The shard slice a task belongs to on its worker (stable map).
    fn shard_of(&self, t: TaskId) -> u32 {
        t.0 % self.shards
    }

    /// The run's topology config, if topology awareness is on.
    fn topology_config(&self) -> Option<&TopologyConfig> {
        self.config
            .multicast_adaptive
            .as_ref()
            .and_then(|a| a.topology.as_ref())
    }

    /// Rack-uplink pressure snapshot for the controller (zeros when no
    /// tracker is installed).
    fn link_pressure(&self) -> LinkPressure {
        match (self.tracker.as_deref(), self.topology_config()) {
            (Some(t), Some(cfg)) => LinkPressure {
                max_uplink_queue: t.max_uplink_queue(),
                uplink_bytes: t.uplink_bytes(),
                hot_uplinks: t.hot_uplinks(cfg.hot_uplink_queue),
            },
            _ => LinkPressure::default(),
        }
    }

    /// The tree-construction inputs when rack-aware relay trees are on:
    /// the cluster spec plus the current per-rack uplink loads.
    fn topo_tree_inputs(&self) -> Option<(&ClusterSpec, Vec<u64>)> {
        let tracker = self.tracker.as_deref()?;
        self.topology_config()
            .filter(|cfg| cfg.topo_trees)
            .map(|_| (tracker.spec(), tracker.uplink_loads()))
    }

    /// The flat pipeline index of a task: `worker * shards + shard`.
    fn flat_shard_of(&self, t: TaskId) -> usize {
        (self.placement.worker_of(t).0 * self.shards + self.shard_of(t)) as usize
    }

    /// The fabric endpoint of one (worker, shard) pipeline.
    fn endpoint(&self, worker: u32, shard: u32) -> EndpointId {
        EndpointId(worker * self.shards + shard)
    }

    /// The endpoint relay traffic targets: a worker's shard-0 pipeline
    /// (relay frames address whole workers, not tasks; the receiving
    /// pipeline fans decoded tuples out to the owning shards).
    fn relay_endpoint(&self, worker: u32) -> EndpointId {
        EndpointId(worker * self.shards)
    }

    /// Deepest cross-shard inbox backlog (queue-pressure input for the
    /// adaptive controller, alongside the fabric's transfer queues).
    fn max_inbox_depth(&self) -> usize {
        self.shard_inboxes.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Turn a received data item into the executor-facing handle. A
    /// shared payload (RDMA semantics) is anchored as-is — the view
    /// rides the receive buffer's refcount and nothing is decoded until
    /// an executor touches it. A copied payload (TCP semantics) does not
    /// outlive dispatch, so the tuple is materialized here, eagerly —
    /// which is also where a copied frame's bad UTF-8 still surfaces.
    fn lazy_tuple(
        &self,
        payload: &Payload,
        view: &TupleView<'_>,
    ) -> Result<LazyTuple, DecodeError> {
        match payload {
            Payload::Shared(buf) => Ok(LazyTuple::from_wire_view(Arc::clone(buf), view)),
            Payload::Copied(_) => view.to_tuple().map(LazyTuple::from_tuple),
        }
    }

    /// Count one lazy-view executor delivery (no-op for owned handles).
    fn note_lazy_delivery(&self, lazy: &LazyTuple) {
        if lazy.is_wire() {
            self.stats.wire_tuples_lazy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Deliver one executor message to the pipeline owning `dst`.
    /// Same-shard deliveries loop back through the thread-local queue
    /// (no channel, no lock); everything else goes to the owning shard's
    /// bounded inbox under the send policy's backoff — a full inbox that
    /// never clears drops the message loudly (`send_failed`), mirroring
    /// fabric backpressure. Returns false only when `dst` is not a task
    /// this run hosts (the caller counts the drop when it came off the
    /// wire); backpressure loss and teardown races are handled here.
    fn deliver(&self, dst: TaskId, msg: ExecMsg) -> bool {
        if self.topology.tasks().component_of(dst).is_none() {
            return false;
        }
        let flat = self.flat_shard_of(dst);
        let Some(tx) = self.shard_inboxes.get(flat) else {
            return false;
        };
        if CURRENT_SHARD.with(|c| c.get()) == Some(flat) {
            LOCAL_QUEUE.with_borrow_mut(|q| q.push_back((dst, msg)));
            return true;
        }
        let mut item = Some((dst, msg));
        let sent = self.config.send.run(&self.stats.send_retries, || {
            match tx.try_send(item.take().expect("re-armed on Full")) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(v)) => {
                    item = Some(v);
                    Err(SendError::Full)
                }
                Err(TrySendError::Disconnected(_)) => Err(SendError::Disconnected),
            }
        });
        match sent {
            Ok(()) => {
                self.stats.cross_shard_msgs.fetch_add(1, Ordering::Relaxed);
            }
            Err(SendError::Full) => {
                // Backpressure never cleared: the message is lost,
                // loudly (tracked tuples time out into replays).
                self.stats.send_failed.fetch_add(1, Ordering::Relaxed);
            }
            // Teardown race: the owning pipeline already exited.
            Err(_) => {}
        }
        true
    }

    /// Send one tuple from `src` to routed destinations of every
    /// downstream edge. `groupings` carries the per-task grouping state.
    /// A `tracked` id pre-registered with the acker is armed here: one
    /// anchor per destination, XOR'd into the ledger atomically after
    /// every destination is known (an empty destination set arms to zero
    /// and acks immediately). A tuple a grouping cannot route (missing
    /// key field) is dropped and counted, never a panic.
    fn emit(&self, src: TaskId, groupings: &mut Groupings, tuple: Tuple, tracked: Option<u64>) {
        let Groupings { edges, scratch } = groupings;
        let shared = Arc::new(tuple);
        let mut arm_xor = 0u64;
        for (comp, g) in edges.iter_mut() {
            // Tracked tuples ride the relay tree too: the frame carries
            // the tracked id, every receiver derives its local tasks'
            // anchors, and executor root-id dedup makes any relay
            // duplicate harmless.
            let relayable = self.relay.is_some()
                && self.config.comm_mode == CommMode::WorkerOriented
                && *g.grouping() == Grouping::All;
            if relayable {
                arm_xor ^= self.relay_broadcast(src, &shared, *comp, tracked);
            } else {
                match g.route_into(&shared, None, scratch) {
                    Ok(()) => arm_xor ^= self.send_data(src, &shared, scratch, tracked),
                    Err(_) => {
                        self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if let (Some(tr), Some(ack)) = (tracked, self.ack.as_ref()) {
            // Arming is order-independent with executor acks: XOR cancels
            // regardless of which side lands first.
            ack.acker.lock().ack(tr, arm_xor);
        }
    }

    /// Whale's multicast path: serialize once into a child-invariant
    /// wire frame (`tag | RelayHeader | item` — no node index, every
    /// receiver derives its own), dispatch locally, and send the same
    /// shared buffer to each of the source worker's tree children;
    /// relays forward the received bytes verbatim. Returns the XOR of
    /// the anchors armed for the component's tasks when `tracked` is
    /// set (the whole subscriber set, local and remote, is charged up
    /// front — an undelivered branch times out into a replay).
    fn relay_broadcast(
        &self,
        src: TaskId,
        tuple: &Arc<Tuple>,
        comp: ComponentId,
        tracked: Option<u64>,
    ) -> u64 {
        let relay = self.relay.as_ref().expect("relayable implies relay state");
        self.stats.serializations.fetch_add(1, Ordering::Relaxed);
        let src_worker = self.placement.worker_of(src);
        let mut arm_xor = 0u64;
        if let Some(tr) = tracked {
            for &t in &self.topology.tasks().tasks_of(comp) {
                arm_xor ^= anchor_for(tr, t);
            }
        }
        // Local instances of the broadcast target on the source's worker.
        let lazy = LazyTuple::from_arc(Arc::clone(tuple));
        for &t in self.placement.tasks_on(src_worker) {
            if self.topology.tasks().component_of(t) == Some(comp) {
                let tag = tracked.map(|tr| AckTag {
                    tracked: tr,
                    anchor: anchor_for(tr, t),
                });
                self.deliver(t, ExecMsg::Data(lazy.clone(), tag));
            }
        }
        // Encode the whole wire frame exactly once into pooled scratch.
        let epoch = relay.current();
        let mut scratch = self.pool.acquire();
        scratch.put_u8(TAG_RELAY);
        RelayHeader {
            origin: src_worker.0,
            epoch: epoch.epoch,
            component: comp.0,
            tracked: tracked.unwrap_or(0),
        }
        .encode_into(&mut scratch);
        codec::encode_tuple_into(&mut scratch, tuple);
        self.stats.frames_encoded.fetch_add(1, Ordering::Relaxed);
        let frame_len = scratch.len();
        let tree = &epoch.trees[src_worker.0 as usize];
        let from = self.relay_endpoint(src_worker.0);
        if self.config.zero_copy {
            // One shared wire buffer serves every child send.
            let buf = scratch.share();
            drop(scratch);
            for &child in tree.children(Node::Source) {
                let Node::Dest(node) = child else { continue };
                let dst = relay_node_worker(src_worker.0, node, self.placement.workers());
                epoch.note_sent();
                if self.send_with_policy(|| {
                    self.fabric
                        .send_shared(from, self.relay_endpoint(dst.0), Arc::clone(&buf))
                }) {
                    relay.note_bytes(frame_len);
                } else {
                    epoch.note_received();
                }
            }
        } else {
            for &child in tree.children(Node::Source) {
                let Node::Dest(node) = child else { continue };
                let dst = relay_node_worker(src_worker.0, node, self.placement.workers());
                epoch.note_sent();
                if self.send_with_policy(|| {
                    self.fabric
                        .send_copied(from, self.relay_endpoint(dst.0), &scratch)
                }) {
                    relay.note_bytes(frame_len);
                } else {
                    epoch.note_received();
                }
            }
        }
        arm_xor
    }

    /// A relay worker received a broadcast frame: forward the *received
    /// wire bytes* to the tree children — no decode, no re-encode, no
    /// buffer-pool round-trip; a shared payload is refcount-bumped, a
    /// copied one is copied by the fabric — then decode once, only for
    /// local delivery.
    fn on_relay_frame(&self, my_worker: u32, h: RelayHeader, payload: &Payload, item: &[u8]) {
        let Some(relay) = self.relay.as_ref() else {
            self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(epoch) = relay.lookup(h.epoch) else {
            // A retired generation: never deliver on it. Tracked runs
            // replay the tuple on the current tree.
            relay.stale_drops.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let node = match relay_node_of_worker(h.origin, my_worker) {
            Some(n) if h.origin < self.placement.workers() => n,
            _ => {
                self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
                epoch.note_received();
                return;
            }
        };
        let tree = &epoch.trees[h.origin as usize];
        if node >= tree.n() {
            self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
            epoch.note_received();
            return;
        }
        if let Some(depth) = tree.depth(Node::Dest(node)) {
            relay.record_depth(depth);
        }
        let t0 = Instant::now();
        let mut forwarded = 0u64;
        let from = self.relay_endpoint(my_worker);
        for &child in tree.children(Node::Dest(node)) {
            let Node::Dest(c) = child else { continue };
            let dst = relay_node_worker(h.origin, c, self.placement.workers());
            epoch.note_sent();
            let ok = match payload {
                Payload::Shared(buf) => self.send_with_policy(|| {
                    self.fabric
                        .send_shared(from, self.relay_endpoint(dst.0), Arc::clone(buf))
                }),
                Payload::Copied(bytes) => self.send_with_policy(|| {
                    self.fabric
                        .send_copied(from, self.relay_endpoint(dst.0), bytes)
                }),
            };
            if ok {
                relay.note_bytes(payload.len());
                forwarded += 1;
            } else {
                epoch.note_received();
            }
        }
        // Children are charged before this receipt is released, so the
        // epoch's in-flight count can only read zero once the whole
        // subtree has drained.
        epoch.note_received();
        if forwarded > 0 {
            self.stats.relay_forwards.fetch_add(forwarded, Ordering::Relaxed);
            if relay.forward_events.fetch_add(1, Ordering::Relaxed) % LATENCY_SAMPLE == 0 {
                let ns = t0.elapsed().as_nanos() as u64;
                relay.forward_ns.lock().push(ns);
            }
        }
        // Validate framing once for the whole worker, then dispatch the
        // lazy view — local executors decode at most once, on first
        // touch, against the shared relay buffer. A corrupt frame is
        // dropped (and counted) rather than crashing the relay worker.
        let lazy = match TupleView::parse(item).and_then(|v| self.lazy_tuple(payload, &v)) {
            Ok(l) => l,
            Err(_) => {
                self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let comp = ComponentId(h.component);
        for &t in self.placement.tasks_on(WorkerId(my_worker)) {
            if self.topology.tasks().component_of(t) == Some(comp) {
                let tag = (h.tracked != 0).then(|| AckTag {
                    tracked: h.tracked,
                    anchor: anchor_for(h.tracked, t),
                });
                self.note_lazy_delivery(&lazy);
                self.deliver(t, ExecMsg::Data(lazy.clone(), tag));
            }
        }
    }

    /// Returns the XOR of the anchors assigned to `dsts` when `tracked`
    /// is set (for ledger arming), 0 otherwise. Anchors are charged for
    /// every destination — including ones whose frame fails to send — so
    /// an undelivered destination leaves the ledger non-zero and the
    /// tuple times out into a replay instead of silently "completing".
    fn send_data(
        &self,
        src: TaskId,
        tuple: &Arc<Tuple>,
        dsts: &[TaskId],
        tracked: Option<u64>,
    ) -> u64 {
        let item_bytes = tuple.payload_bytes();
        let p = plan(
            self.config.comm_mode,
            src,
            item_bytes,
            dsts,
            &self.placement,
        );
        let mut arm_xor = 0u64;
        let tag_of = |t: TaskId| {
            tracked.map(|tr| AckTag {
                tracked: tr,
                anchor: anchor_for(tr, t),
            })
        };
        // Local deliveries: no serialization beyond what the mode charges.
        let lazy = LazyTuple::from_arc(Arc::clone(tuple));
        for &t in &p.local_tasks {
            let tag = tag_of(t);
            if let Some(tag) = tag {
                arm_xor ^= tag.anchor;
            }
            // The owning pipeline may already have exited after EOS; the
            // delivery layer swallows that race.
            self.deliver(t, ExecMsg::Data(lazy.clone(), tag));
        }
        self.stats
            .serializations
            .fetch_add(p.serializations as u64, Ordering::Relaxed);
        if p.remote.is_empty() {
            return arm_xor;
        }
        match self.config.comm_mode {
            CommMode::InstanceOriented => {
                // Storm's per-destination serialization, but without a
                // per-destination deep clone of the tuple: the shared
                // decoded tuple is borrowed straight into the frame.
                for env in &p.remote {
                    debug_assert_eq!(env.dst_tasks.len(), 1);
                    let dst = env.dst_tasks[0];
                    let to_shard = self.shard_of(dst);
                    if let Some(tr) = tracked {
                        arm_xor ^= anchor_for(tr, dst);
                        self.transmit(src, env.dst_worker, to_shard, tracked, |framed| {
                            framed.put_u8(TAG_INSTANCE_TRACKED);
                            framed.put_u64_le(tr);
                            InstanceMessage::encode_parts_into(src, dst, tuple, framed);
                        });
                    } else {
                        self.transmit(src, env.dst_worker, to_shard, None, |framed| {
                            framed.put_u8(TAG_INSTANCE);
                            InstanceMessage::encode_parts_into(src, dst, tuple, framed);
                        });
                    }
                }
            }
            CommMode::WorkerOriented => {
                // Serialize the data item once into pooled scratch; each
                // per-worker frame borrows it and adds only the header.
                let mut item = self.pool.acquire();
                codec::encode_tuple_into(&mut item, tuple);
                for env in &p.remote {
                    if let Some(tr) = tracked {
                        for &t in &env.dst_tasks {
                            arm_xor ^= anchor_for(tr, t);
                        }
                    }
                    self.transmit_worker_frame(src, env.dst_worker, &env.dst_tasks, &item, tracked);
                }
            }
        }
        arm_xor
    }

    /// Send one worker-oriented frame per destination *pipeline*: the
    /// envelope's task list is split by owning shard (each pipeline reads
    /// only its own endpoint) and every per-shard frame borrows the same
    /// serialized item. One shard (the common case, and always true at
    /// `shards == 1`) stays a single frame with no extra allocation.
    fn transmit_worker_frame(
        &self,
        src: TaskId,
        dst_worker: WorkerId,
        dst_tasks: &[TaskId],
        item: &BytesMut,
        tracked: Option<u64>,
    ) {
        let frame = |tasks: &[TaskId], framed: &mut BytesMut| match tracked {
            Some(tr) => {
                framed.put_u8(TAG_WORKER_TRACKED);
                framed.put_u64_le(tr);
                WorkerMessage::encode_with_item_into(src, tasks, item, framed);
            }
            None => {
                framed.put_u8(TAG_WORKER);
                WorkerMessage::encode_with_item_into(src, tasks, item, framed);
            }
        };
        let first_shard = self.shard_of(dst_tasks[0]);
        if self.shards == 1 || dst_tasks.iter().all(|&t| self.shard_of(t) == first_shard) {
            self.transmit(src, dst_worker, first_shard, tracked, |framed| {
                frame(dst_tasks, framed)
            });
            return;
        }
        for shard in 0..self.shards {
            let tasks: Vec<TaskId> = dst_tasks
                .iter()
                .copied()
                .filter(|&t| self.shard_of(t) == shard)
                .collect();
            if tasks.is_empty() {
                continue;
            }
            self.transmit(src, dst_worker, shard, tracked, |framed| frame(&tasks, framed));
        }
    }

    /// Send one point-to-point data frame. When [`LiveConfig::log`] is
    /// set the encoded frame is written through the destination's
    /// partition log *before* the fabric send (write-ahead), so a crash
    /// after the append can always be healed by replaying the log. Relay
    /// and EOS frames never come through here and are not logged.
    fn transmit(
        &self,
        src: TaskId,
        dst_worker: WorkerId,
        dst_shard: u32,
        tracked: Option<u64>,
        fill: impl FnOnce(&mut BytesMut),
    ) {
        let from = self.endpoint(self.placement.worker_of(src).0, self.shard_of(src));
        let to = self.endpoint(dst_worker.0, dst_shard);
        let Some(log) = &self.log else {
            self.send_frame(from, to, fill);
            return;
        };
        // Inlined send_frame with the log append between encode and send.
        let mut scratch = self.pool.acquire();
        fill(&mut scratch);
        self.stats.frames_encoded.fetch_add(1, Ordering::Relaxed);
        log.append(to, tracked, &scratch[..]);
        if self.config.zero_copy {
            let buf = scratch.share();
            drop(scratch);
            self.send_with_policy(|| self.fabric.send_shared(from, to, Arc::clone(&buf)));
        } else {
            self.send_with_policy(|| self.fabric.send_copied(from, to, &scratch));
        }
    }

    /// Encode one framed message into a pooled scratch buffer and send
    /// it, waiting out transient ring backpressure under the run's
    /// [`SendPolicy`] (`Full` means posted descriptors outran the
    /// flusher, the bounded transfer queue of the paper's model — spin,
    /// yield, then park with exponential backoff up to the policy
    /// deadline; a dead flusher degrades the run instead of livelocking
    /// it). Zero-copy runs snapshot the frame into a single shared wire
    /// buffer that every post and retry reuses (the batch descriptor
    /// borrows it by reference — no per-destination clone); copied runs
    /// pay the TCP copy tax per post. Teardown races (unknown or
    /// disconnected endpoints) are dropped here; the fabric itself counts
    /// them in `send_errors`. Returns whether the frame was accepted by
    /// the fabric.
    fn send_frame(&self, from: EndpointId, to: EndpointId, fill: impl FnOnce(&mut BytesMut)) -> bool {
        let mut scratch = self.pool.acquire();
        fill(&mut scratch);
        self.stats.frames_encoded.fetch_add(1, Ordering::Relaxed);
        if self.config.zero_copy {
            let buf = scratch.share();
            drop(scratch); // scratch returns to the pool before any retry wait
            self.send_with_policy(|| self.fabric.send_shared(from, to, Arc::clone(&buf)))
        } else {
            self.send_with_policy(|| self.fabric.send_copied(from, to, &scratch))
        }
    }

    /// Encode one frame and send it `copies` times: redundant copies
    /// reuse the single encoded buffer, so redundancy costs wire bytes
    /// but never an extra encode.
    fn send_frame_copies(
        &self,
        from: EndpointId,
        to: EndpointId,
        copies: u32,
        fill: impl FnOnce(&mut BytesMut),
    ) {
        let mut scratch = self.pool.acquire();
        fill(&mut scratch);
        self.stats.frames_encoded.fetch_add(1, Ordering::Relaxed);
        if self.config.zero_copy {
            let buf = scratch.share();
            drop(scratch);
            for _ in 0..copies {
                self.send_with_policy(|| self.fabric.send_shared(from, to, Arc::clone(&buf)));
            }
        } else {
            for _ in 0..copies {
                self.send_with_policy(|| self.fabric.send_copied(from, to, &scratch));
            }
        }
    }

    /// Run one fabric send under the policy's bounded backoff. `Full`
    /// past the deadline fails the frame loudly; teardown races (unknown
    /// or disconnected endpoints) are dropped here — the fabric counts
    /// them in `send_errors`. Returns whether the fabric accepted.
    fn send_with_policy(&self, attempt: impl FnMut() -> Result<(), SendError>) -> bool {
        match self.config.send.run(&self.stats.send_retries, attempt) {
            Ok(()) => true,
            Err(SendError::Full) => {
                // Backpressure never cleared within the policy deadline:
                // the frame is lost, loudly.
                self.stats.send_failed.fetch_add(1, Ordering::Relaxed);
                false
            }
            Err(SendError::UnknownEndpoint | SendError::Disconnected) => false,
        }
    }

    /// A relay worker received an EOS frame: forward the received bytes
    /// along the tree (same child-invariant frame — no re-encode), then
    /// deliver EOS to the local instances of the component.
    fn on_relay_eos(
        &self,
        my_worker: u32,
        origin: u32,
        epoch_id: u32,
        comp: ComponentId,
        src: TaskId,
        payload: &Payload,
    ) {
        let Some(relay) = self.relay.as_ref() else {
            self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(epoch) = relay.lookup(epoch_id) else {
            relay.stale_drops.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let node = match relay_node_of_worker(origin, my_worker) {
            Some(n) if origin < self.placement.workers() => n,
            _ => {
                self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
                epoch.note_received();
                return;
            }
        };
        let tree = &epoch.trees[origin as usize];
        if node >= tree.n() {
            self.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
            epoch.note_received();
            return;
        }
        let from = self.relay_endpoint(my_worker);
        for &child in tree.children(Node::Dest(node)) {
            let Node::Dest(c) = child else { continue };
            let dst = relay_node_worker(origin, c, self.placement.workers());
            epoch.note_sent();
            let ok = match payload {
                Payload::Shared(buf) => self.send_with_policy(|| {
                    self.fabric
                        .send_shared(from, self.relay_endpoint(dst.0), Arc::clone(buf))
                }),
                Payload::Copied(bytes) => self.send_with_policy(|| {
                    self.fabric
                        .send_copied(from, self.relay_endpoint(dst.0), bytes)
                }),
            };
            if ok {
                relay.note_bytes(payload.len());
            } else {
                epoch.note_received();
            }
        }
        epoch.note_received();
        for &t in self.placement.tasks_on(WorkerId(my_worker)) {
            if self.topology.tasks().component_of(t) == Some(comp) {
                self.deliver(t, ExecMsg::Eos(src));
            }
        }
    }

    /// Broadcast end-of-stream from `src` to every subscriber of its
    /// component, across both local and remote paths.
    fn broadcast_eos(&self, src: TaskId) {
        let comp = self
            .topology
            .tasks()
            .component_of(src)
            .expect("task belongs to a component");
        // Ack runs may face injected frame drops; EOS frames are sent
        // redundantly (receivers count each upstream task at most once,
        // so duplicates are harmless). Each redundant frame is encoded
        // once and resent — copies grow wire traffic, not encodes.
        let copies = self
            .config
            .ack
            .map(|a| a.eos_redundancy.max(1))
            .unwrap_or(1);
        for edge in self.topology.downstream_edges(comp) {
            // Relay-path streams must carry EOS along the same tree so it
            // stays behind every in-flight tuple (per-hop FIFO channels).
            let relayed = self.relay.is_some()
                && self.config.comm_mode == CommMode::WorkerOriented
                && edge.grouping == Grouping::All;
            if relayed {
                let relay = self.relay.as_ref().expect("checked above");
                let src_worker = self.placement.worker_of(src);
                for &t in self.placement.tasks_on(src_worker) {
                    if self.topology.tasks().component_of(t) == Some(edge.to) {
                        self.deliver(t, ExecMsg::Eos(src));
                    }
                }
                // EOS departs on the current generation; wait (bounded)
                // for the previous one to drain first so it cannot beat
                // still-relaying data from before a switch.
                if !relay.try_retire_prev() {
                    relay.await_prev_drained(self.drain_grace());
                }
                let epoch = relay.current();
                // Child-invariant EOS frame, encoded once.
                let mut scratch = self.pool.acquire();
                scratch.put_u8(TAG_RELAY_EOS);
                scratch.put_u32_le(src_worker.0);
                scratch.put_u32_le(epoch.epoch);
                scratch.put_u32_le(edge.to.0);
                scratch.put_u32_le(src.0);
                self.stats.frames_encoded.fetch_add(1, Ordering::Relaxed);
                let frame_len = scratch.len();
                let tree = &epoch.trees[src_worker.0 as usize];
                let from = self.relay_endpoint(src_worker.0);
                let buf = self.config.zero_copy.then(|| scratch.share());
                for &child in tree.children(Node::Source) {
                    let Node::Dest(node) = child else { continue };
                    let dst = relay_node_worker(src_worker.0, node, self.placement.workers());
                    for _ in 0..copies {
                        epoch.note_sent();
                        let ok = match &buf {
                            Some(b) => self.send_with_policy(|| {
                                self.fabric
                                    .send_shared(from, self.relay_endpoint(dst.0), Arc::clone(b))
                            }),
                            None => self.send_with_policy(|| {
                                self.fabric
                                    .send_copied(from, self.relay_endpoint(dst.0), &scratch)
                            }),
                        };
                        if ok {
                            relay.note_bytes(frame_len);
                        } else {
                            epoch.note_received();
                        }
                    }
                }
                continue;
            }
            let dsts = self.topology.tasks().tasks_of(edge.to);
            let by_worker = self.placement.group_by_worker(&dsts);
            let src_worker = self.placement.worker_of(src);
            let from = self.endpoint(src_worker.0, self.shard_of(src));
            for (worker, tasks) in by_worker {
                if worker == src_worker {
                    for t in tasks {
                        self.deliver(t, ExecMsg::Eos(src));
                    }
                } else {
                    // One EOS frame per destination pipeline: each shard
                    // reads only its own endpoint.
                    for shard in 0..self.shards {
                        let shard_tasks: Vec<TaskId> = tasks
                            .iter()
                            .copied()
                            .filter(|&t| self.shard_of(t) == shard)
                            .collect();
                        if shard_tasks.is_empty() {
                            continue;
                        }
                        let to = self.endpoint(worker.0, shard);
                        self.send_frame_copies(from, to, copies, |framed| {
                            framed.put_u8(TAG_EOS);
                            framed.put_u32_le(src.0);
                            framed.put_u32_le(shard_tasks.len() as u32);
                            for t in &shard_tasks {
                                framed.put_u32_le(t.0);
                            }
                        });
                    }
                }
            }
        }
    }

    /// Bounded drain wait used before EOS departure and switches.
    fn drain_grace(&self) -> Duration {
        self.config
            .multicast_adaptive
            .as_ref()
            .map(|a| a.drain_grace)
            .unwrap_or(Duration::from_millis(250))
    }
}

/// Per-task routing state for `src`'s downstream edges. Shuffle cursors
/// are seeded by a stable hash of the source task id, so the N routers of
/// a parallel component start at spread-out offsets instead of all
/// hammering `targets[0]` first.
fn build_groupings(topology: &Topology, src: TaskId, comp: ComponentId) -> Groupings {
    let edges = topology
        .downstream_edges(comp)
        .into_iter()
        .map(|e| {
            assert!(
                e.grouping != Grouping::Direct,
                "direct grouping is not supported by the live runtime"
            );
            (
                e.to,
                GroupingExec::with_rr_seed(
                    e.grouping.clone(),
                    topology.tasks().tasks_of(e.to),
                    splitmix64(src.0 as u64),
                ),
            )
        })
        .collect();
    Groupings {
        edges,
        scratch: Vec::new(),
    }
}

struct OutboxEmitter<'a> {
    routing: &'a Routing,
    src: TaskId,
    outbox: &'a mut Outbox,
}

impl Emitter for OutboxEmitter<'_> {
    fn emit(&mut self, tuple: Tuple) {
        // Bolt emissions are untracked: the acker tracks spout roots to
        // their first-hop subscribers (delivery tracking, not full tree
        // tracking — replays re-enter at the spout).
        self.outbox.emit(self.routing, self.src, tuple, None);
    }
}

/// An all-zero report for runs that never spawned a thread (config
/// errors caught before the fabric was built).
fn empty_report(outcome: RunOutcome, n_components: usize) -> RunReport {
    RunReport {
        elapsed: Duration::ZERO,
        serializations: 0,
        executed: vec![0; n_components],
        spout_emitted: 0,
        fabric_messages: 0,
        copied_bytes: 0,
        shared_bytes: 0,
        relay_forwards: 0,
        frames_encoded: 0,
        relay_bytes: 0,
        relay_stale_drops: 0,
        uplink_bytes: 0,
        link_bytes: Vec::new(),
        relay_switches: 0,
        relay_switch_moves: 0,
        relay_epoch: 0,
        relay_d_star: 0,
        relay_depths: Vec::new(),
        relay_forward_ns: Vec::new(),
        dropped_frames: 0,
        thread_panics: 0,
        shards: 0,
        cross_shard_msgs: 0,
        wire_tuples_lazy: 0,
        tuples_materialized: 0,
        send_errors: 0,
        batches_flushed: 0,
        mean_batch_size: 0.0,
        pool_hits: 0,
        pool_misses: 0,
        pool_high_watermark: 0,
        pool_hit_rate: 0.0,
        send_retries: 0,
        send_failed: 0,
        deadline_exits: 0,
        tuples_acked: 0,
        tuples_failed: 0,
        tuples_replayed: 0,
        dedup_dropped: 0,
        fault_drops: 0,
        fault_duplicates: 0,
        fault_delayed: 0,
        fault_full_injected: 0,
        fault_partition_drops: 0,
        fault_crashed_sends: 0,
        log_appended_records: 0,
        log_appended_bytes: 0,
        log_replayed_records: 0,
        log_replayed_bytes: 0,
        log_gcd_bytes: 0,
        log_gc_watermark: 0,
        log_retained_bytes: 0,
        log_torn_tails: 0,
        timeline: Vec::new(),
        outcome,
        delivery_ns: Vec::new(),
    }
}

/// Execute a topology to completion on the live runtime.
///
/// Every spout runs until its `next_tuple` returns `None`; EOS then
/// propagates through the DAG; the run finishes when every executor has
/// drained. Returns aggregate statistics.
pub fn run_topology(topology: Topology, operators: Operators, config: LiveConfig) -> RunReport {
    // Validate every component has an operator before spawning anything:
    // a missing factory is a configuration error reported through
    // [`RunOutcome::ConfigError`], not a worker crash.
    let n_components = topology.components().len();
    for comp in topology.components() {
        let err = match comp.kind {
            ComponentKind::Spout if !operators.spouts.contains_key(&comp.name) => {
                Some(BuildError::MissingSpout(comp.name.clone()))
            }
            ComponentKind::Bolt if !operators.bolts.contains_key(&comp.name) => {
                Some(BuildError::MissingBolt(comp.name.clone()))
            }
            _ => None,
        };
        if let Some(err) = err {
            return empty_report(RunOutcome::ConfigError(err), n_components);
        }
    }

    // Topology awareness (racks, per-link accounting) comes in through
    // the adaptive config; without it the cluster is one flat rack.
    let topo_config = config
        .multicast_adaptive
        .as_ref()
        .and_then(|a| a.topology.clone());
    let cluster = match &topo_config {
        Some(t) => t.cluster_spec(config.machines, 16),
        None => ClusterSpec::new(config.machines, 1, 16),
    };
    let placement = Placement::even(&topology, &cluster);
    let mut instance = config.fabric.build();
    // Fault injection wraps the concrete transport: every runtime send
    // and registration goes through the wrapper so the plan sees each
    // frame in order. The concrete handle is kept for its counters.
    let fault: Option<Arc<FaultFabric>> = config
        .fault
        .clone()
        .map(|plan| Arc::new(FaultFabric::new(Arc::clone(&instance.fabric), plan)));
    let fabric: Arc<dyn FabricPath> = match &fault {
        Some(f) => Arc::clone(f) as Arc<dyn FabricPath>,
        None => Arc::clone(&instance.fabric),
    };

    let stats = Arc::new(RunStats {
        executed: (0..topology.components().len())
            .map(|_| AtomicU64::new(0))
            .collect(),
        ..RunStats::default()
    });

    let relay_enabled = config.multicast_d_star.is_some() || config.multicast_adaptive.is_some();
    if relay_enabled {
        assert_eq!(
            config.comm_mode,
            CommMode::WorkerOriented,
            "the multicast tree relays worker-oriented messages"
        );
    }
    // Per-link accounting: attribute every send on the *outermost*
    // fabric (the fault wrapper delegates inward, so injected drops
    // never count and nothing double-counts) to its one egress link.
    let tracker = topo_config.as_ref().map(|_| {
        let t = Arc::new(LinkTracker::new(cluster.clone()));
        fabric.install_link_tracker(Arc::clone(&t));
        t
    });

    let relay = relay_enabled.then(|| {
        let d = config.multicast_d_star.unwrap_or_else(|| {
            config
                .multicast_adaptive
                .as_ref()
                .expect("relay_enabled implies one of the two")
                .initial_d
        });
        let d = d.max(1);
        let topo_trees = topo_config.as_ref().map(|t| t.topo_trees).unwrap_or(false);
        RelayState::new(if topo_trees {
            // No traffic yet: the initial generation sees idle uplinks.
            build_relay_epoch_topo(0, d, &placement, &cluster, &[])
        } else {
            build_relay_epoch(0, d, placement.workers())
        })
    });

    // One flat shard per (worker, shard): each gets its own fabric
    // endpoint (ids are assigned sequentially, so registration cannot
    // collide) and a bounded cross-shard inbox.
    let shards = config.shards.max(1);
    let n_flat = (placement.workers() * shards) as usize;
    let inbox_capacity = config.shard_inbox_capacity.max(1);
    let mut shard_inboxes = Vec::with_capacity(n_flat);
    let mut shard_inbox_rx = Vec::with_capacity(n_flat);
    let mut shard_fabric_rx = Vec::with_capacity(n_flat);
    for flat in 0..n_flat {
        let (tx, rx) = bounded(inbox_capacity);
        shard_inboxes.push(tx);
        shard_inbox_rx.push(rx);
        shard_fabric_rx.push(
            fabric
                .register(EndpointId(flat as u32))
                .expect("shard endpoint ids are unique"),
        );
        if let Some(t) = &tracker {
            // Pipeline endpoint → hosting machine, so the tracker can
            // classify each send's one egress link.
            let worker = WorkerId(flat as u32 / shards);
            t.map_endpoint(EndpointId(flat as u32), placement.machine_of_worker(worker));
        }
    }

    let ack_runtime = config.ack.map(AckRuntime::new);
    let log_runtime = config.log.map(|cfg| LogRuntime::new(cfg, n_flat));
    let routing = Arc::new(Routing {
        topology,
        placement,
        config,
        relay,
        fabric: Arc::clone(&fabric),
        pool: BufferPool::default(),
        shard_inboxes,
        shards,
        stats: Arc::clone(&stats),
        ack: ack_runtime,
        tracker,
        log: log_runtime,
    });

    let start = std::time::Instant::now();
    let mut handles = Vec::new();

    // Log recovery thread: runs GC passes against the acker watermark
    // and, when an injected crash has a matching restart, replays the
    // crashed endpoint's slice straight from its partition log — the
    // replay path reads the log (a modeled one-sided READ region), never
    // the sending operator, and root-id dedup at executors absorbs any
    // overlap with in-flight acker replays.
    let log_stop = Arc::new(AtomicBool::new(false));
    let log_handle = routing.log.is_some().then(|| {
        let routing = Arc::clone(&routing);
        let fault = fault.clone();
        let stop = Arc::clone(&log_stop);
        std::thread::spawn(move || log_recovery_loop(&routing, fault.as_deref(), n_flat, &stop))
    });

    // Adaptive controller thread: samples the live workload, re-plans
    // d*, and switches tree generations while the data plane runs.
    let adaptive_stop = Arc::new(AtomicBool::new(false));
    let adaptive_handle = routing.config.multicast_adaptive.clone().map(|cfg| {
        let routing = Arc::clone(&routing);
        let stats = Arc::clone(&stats);
        let fabric = Arc::clone(&fabric);
        let stop = Arc::clone(&adaptive_stop);
        std::thread::spawn(move || adaptive_loop(&cfg, &routing, &stats, &fabric, &stop))
    });

    // Monitor thread: snapshot the run's counters every interval into
    // the timeline (plus one final post-run sample at teardown).
    let timeline: Arc<Mutex<Vec<TimelineSample>>> = Arc::new(Mutex::new(Vec::new()));
    let monitor_stop = Arc::new(AtomicBool::new(false));
    let monitor_handle = routing.config.monitor_interval.map(|interval| {
        let routing = Arc::clone(&routing);
        let stats = Arc::clone(&stats);
        let fabric = Arc::clone(&fabric);
        let timeline = Arc::clone(&timeline);
        let stop = Arc::clone(&monitor_stop);
        std::thread::spawn(move || {
            let sample = |at: Duration| TimelineSample {
                at,
                spout_emitted: stats.spout_emitted.load(Ordering::Relaxed),
                executed: stats
                    .executed
                    .iter()
                    .map(|a| a.load(Ordering::Relaxed))
                    .sum(),
                fabric_messages: fabric.messages(),
                send_errors: fabric.send_errors(),
                send_retries: stats.send_retries.load(Ordering::Relaxed),
                acked: routing
                    .ack
                    .as_ref()
                    .map_or(0, |a| a.acked.load(Ordering::Relaxed)),
                failed: routing
                    .ack
                    .as_ref()
                    .map_or(0, |a| a.failed.load(Ordering::Relaxed)),
                replayed: routing
                    .ack
                    .as_ref()
                    .map_or(0, |a| a.replayed.load(Ordering::Relaxed)),
            };
            while sleep_with_stop(interval, &stop) {
                timeline.lock().push(sample(start.elapsed()));
            }
            timeline.lock().push(sample(start.elapsed()));
        })
    });

    // Build one pipeline per flat shard, each owning its slice of tasks
    // (stable `task % shards` map) — operators are constructed here on
    // the driver thread so factory panics surface as config-time panics,
    // not degraded runs.
    let mut sender_handles = Vec::new();
    let mut pipelines: Vec<ShardPipeline> = Vec::with_capacity(n_flat);
    let (done_tx, done_rx) = unbounded::<()>();
    for (flat, (fabric_rx, inbox_rx)) in shard_fabric_rx
        .into_iter()
        .zip(shard_inbox_rx)
        .enumerate()
    {
        pipelines.push(ShardPipeline {
            flat,
            worker: flat as u32 / shards,
            fabric_rx,
            inbox_rx,
            spouts: Vec::new(),
            bolts: HashMap::new(),
            done_tx: done_tx.clone(),
            scratch: Vec::new(),
        });
    }
    drop(done_tx);
    for comp in routing.topology.components().to_vec() {
        for (idx, task) in routing
            .topology
            .tasks()
            .tasks_of(comp.id)
            .into_iter()
            .enumerate()
        {
            let flat = routing.flat_shard_of(task);
            let outbox = make_outbox(&routing, task, comp.id, &mut sender_handles);
            match comp.kind {
                ComponentKind::Spout => {
                    let spout_factory = operators
                        .spouts
                        .get(&comp.name)
                        .expect("validated before spawning");
                    pipelines[flat].spouts.push(SpoutState {
                        task,
                        spout: spout_factory(idx as u32),
                        outbox: Some(outbox),
                        pending: HashMap::new(),
                        since_prune: 0,
                        phase: SpoutPhase::Emitting,
                    });
                }
                ComponentKind::Bolt => {
                    let bolt_factory = operators
                        .bolts
                        .get(&comp.name)
                        .expect("validated before spawning");
                    let expected_eos: usize = routing
                        .topology
                        .upstream_edges(comp.id)
                        .iter()
                        .map(|e| routing.topology.tasks().parallelism(e.from) as usize)
                        .sum();
                    pipelines[flat].bolts.insert(
                        task,
                        BoltState {
                            task,
                            comp: comp.id,
                            bolt: bolt_factory(idx as u32),
                            outbox: Some(outbox),
                            eos_seen: HashSet::new(),
                            expected_eos,
                            acked_tracked: HashSet::new(),
                            seen_roots: HashSet::new(),
                            poisoned: false,
                            done: false,
                        },
                    );
                }
            }
        }
    }
    for p in pipelines {
        let routing = Arc::clone(&routing);
        let stats = Arc::clone(&stats);
        handles.push(std::thread::spawn(move || {
            // Operator panics are caught inside the pipeline; a panic
            // escaping here is a runtime bug, but the completion signal
            // must still fire or the driver would block forever.
            let done_tx = p.done_tx.clone();
            let res = catch_unwind(AssertUnwindSafe(|| p.run(&routing, &stats)));
            if let Err(payload) = res {
                let _ = done_tx.send(());
                std::panic::resume_unwind(payload);
            }
        }));
    }

    // Wait until every pipeline reports its tasks complete (a pipeline
    // that panicked counts: its wrapper signals before re-raising).
    for _ in 0..n_flat {
        if done_rx.recv().is_err() {
            break;
        }
    }
    // Join sender threads even if some panicked: bailing on the first
    // failure would skip the endpoint teardown below and leave the
    // pipeline threads spinning on an open fabric forever.
    let mut thread_panics = 0u64;
    for h in sender_handles {
        if h.join().is_err() {
            thread_panics += 1;
        }
    }
    // Producers done: stop reconfiguring before the fabric tears down.
    adaptive_stop.store(true, Ordering::Relaxed);
    if let Some(h) = adaptive_handle {
        if h.join().is_err() {
            thread_panics += 1;
        }
    }
    // Producers done means every replay that can still complete a tuple
    // has happened; stop the log GC/replay thread before teardown.
    log_stop.store(true, Ordering::Relaxed);
    if let Some(h) = log_handle {
        if h.join().is_err() {
            thread_panics += 1;
        }
    }
    // All producers done: release any fault-parked frames, flush
    // anything still buffered in the transport (and stop the ring
    // flusher), then close the fabric endpoints so the pipelines exit
    // (they keep draining/relaying frames until their endpoint closes).
    if let Some(f) = &fault {
        f.flush();
    }
    instance.shutdown();
    for flat in 0..n_flat {
        fabric.deregister(EndpointId(flat as u32));
    }
    for h in handles {
        if h.join().is_err() {
            thread_panics += 1;
        }
    }
    // Operator panics were caught on the pipelines (the thread survives
    // to run its other tasks); fold them into the same degradation
    // signal the per-task threads used to produce by dying.
    thread_panics += stats.op_panics.load(Ordering::Relaxed);
    monitor_stop.store(true, Ordering::Relaxed);
    if let Some(h) = monitor_handle {
        let _ = h.join();
    }

    let elapsed = start.elapsed();
    let ack = routing.ack.as_ref();
    let failed_sends = stats.send_failed.load(Ordering::Relaxed);
    let failed_tuples = ack.map_or(0, |a| a.failed.load(Ordering::Relaxed));
    let deadline_exits = stats.deadline_exits.load(Ordering::Relaxed);
    let degraded =
        thread_panics > 0 || failed_sends > 0 || failed_tuples > 0 || deadline_exits > 0;
    let timeline = std::mem::take(&mut *timeline.lock());
    RunReport {
        elapsed,
        serializations: stats.serializations.load(Ordering::Relaxed),
        executed: stats
            .executed
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        spout_emitted: stats.spout_emitted.load(Ordering::Relaxed),
        fabric_messages: fabric.messages(),
        copied_bytes: fabric.copied_bytes(),
        shared_bytes: fabric.shared_bytes(),
        relay_forwards: stats.relay_forwards.load(Ordering::Relaxed),
        frames_encoded: stats.frames_encoded.load(Ordering::Relaxed),
        relay_bytes: routing
            .relay
            .as_ref()
            .map_or(0, |r| r.relay_bytes.load(Ordering::Relaxed)),
        relay_stale_drops: routing
            .relay
            .as_ref()
            .map_or(0, |r| r.stale_drops.load(Ordering::Relaxed)),
        uplink_bytes: routing.tracker.as_ref().map_or(0, |t| t.uplink_bytes()),
        link_bytes: routing.tracker.as_ref().map_or_else(Vec::new, |t| {
            t.snapshot()
                .into_iter()
                .filter(|l| l.bytes > 0)
                .map(|l| (l.link.to_string(), l.bytes))
                .collect()
        }),
        relay_switches: routing
            .relay
            .as_ref()
            .map_or(0, |r| r.switches.load(Ordering::Relaxed)),
        relay_switch_moves: routing
            .relay
            .as_ref()
            .map_or(0, |r| r.switch_moves.load(Ordering::Relaxed)),
        relay_epoch: routing.relay.as_ref().map_or(0, |r| r.current().epoch),
        relay_d_star: routing.relay.as_ref().map_or(0, |r| r.current().d_star),
        relay_depths: routing.relay.as_ref().map_or_else(Vec::new, |r| {
            r.depth_counts
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect()
        }),
        relay_forward_ns: routing
            .relay
            .as_ref()
            .map_or_else(Vec::new, |r| std::mem::take(&mut *r.forward_ns.lock())),
        dropped_frames: stats.dropped_frames.load(Ordering::Relaxed),
        thread_panics,
        shards: routing.shards as u64,
        cross_shard_msgs: stats.cross_shard_msgs.load(Ordering::Relaxed),
        wire_tuples_lazy: stats.wire_tuples_lazy.load(Ordering::Relaxed),
        tuples_materialized: stats.tuples_materialized.load(Ordering::Relaxed),
        send_errors: fabric.send_errors(),
        batches_flushed: fabric.flushed_batches(),
        mean_batch_size: {
            let batches = fabric.flushed_batches();
            if batches == 0 {
                0.0
            } else {
                fabric.flushed_items() as f64 / batches as f64
            }
        },
        pool_hits: routing.pool.hits(),
        pool_misses: routing.pool.misses(),
        pool_high_watermark: routing.pool.high_watermark(),
        pool_hit_rate: routing.pool.hit_rate(),
        send_retries: stats.send_retries.load(Ordering::Relaxed),
        send_failed: failed_sends,
        deadline_exits,
        tuples_acked: ack.map_or(0, |a| a.acked.load(Ordering::Relaxed)),
        tuples_failed: failed_tuples,
        tuples_replayed: ack.map_or(0, |a| a.replayed.load(Ordering::Relaxed)),
        dedup_dropped: ack.map_or(0, |a| a.dedup_dropped.load(Ordering::Relaxed)),
        fault_drops: fault.as_ref().map_or(0, |f| f.drops()),
        fault_duplicates: fault.as_ref().map_or(0, |f| f.duplicates()),
        fault_delayed: fault.as_ref().map_or(0, |f| f.delayed()),
        fault_full_injected: fault.as_ref().map_or(0, |f| f.full_injected()),
        fault_partition_drops: fault.as_ref().map_or(0, |f| f.partition_drops()),
        fault_crashed_sends: fault.as_ref().map_or(0, |f| f.crashed_sends()),
        log_appended_records: routing.log.as_ref().map_or(0, |l| l.appended_records()),
        log_appended_bytes: routing.log.as_ref().map_or(0, |l| l.appended_bytes()),
        log_replayed_records: routing
            .log
            .as_ref()
            .map_or(0, |l| l.replayed_records.load(Ordering::Relaxed)),
        log_replayed_bytes: routing
            .log
            .as_ref()
            .map_or(0, |l| l.replayed_bytes.load(Ordering::Relaxed)),
        log_gcd_bytes: routing.log.as_ref().map_or(0, |l| l.gcd_bytes()),
        log_gc_watermark: routing.log.as_ref().map_or(0, |l| l.gc_watermark()),
        log_retained_bytes: routing.log.as_ref().map_or(0, |l| l.retained_bytes()),
        log_torn_tails: routing.log.as_ref().map_or(0, |l| l.torn_tails()),
        timeline,
        outcome: if degraded {
            RunOutcome::Degraded {
                thread_panics,
                failed_sends,
                failed_tuples,
                deadline_exits,
            }
        } else {
            RunOutcome::Clean
        },
        delivery_ns: {
            let mut samples = stats.delivery_ns.lock();
            std::mem::take(&mut *samples)
        },
    }
}

/// Sleep up to `total`, in small slices, re-checking `stop` between
/// slices. Returns `true` if the full interval elapsed, `false` if the
/// stop flag cut it short — background threads sleeping whole intervals
/// in one call used to delay shutdown by up to a full interval each.
fn sleep_with_stop(total: Duration, stop: &AtomicBool) -> bool {
    const SLICE: Duration = Duration::from_millis(5);
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return true;
        }
        std::thread::sleep(remaining.min(SLICE));
    }
}

/// The log GC/replay thread (see [`LiveConfig::log`]). Two duties, both
/// polled on a short interval: advance each endpoint's log GC watermark
/// over the resolved-root prefix (acker feedback keeps retention flat),
/// and watch injected crash+restart pairs — when the fault layer reports
/// an endpoint restarted, its log slice is replayed from the oldest
/// retained record. Replayed frames go straight to the fabric (one
/// modeled one-sided READ per record against the log's registered
/// region), bypassing `transmit` so they are not re-logged, and root-id
/// dedup at executors absorbs overlap with in-flight acker replays.
fn log_recovery_loop(
    routing: &Routing,
    fault: Option<&FaultFabric>,
    n_flat: usize,
    stop: &AtomicBool,
) {
    let log = routing.log.as_ref().expect("recovery thread implies logs");
    // Crash+restart pairs from the injected plan: data endpoints that
    // will come back and need their slice replayed exactly once.
    let mut awaiting: Vec<EndpointId> = routing
        .config
        .fault
        .as_ref()
        .map(|plan| {
            plan.crashes
                .iter()
                .filter(|c| (c.endpoint.0 as usize) < n_flat)
                .filter(|c| {
                    plan.restarts
                        .iter()
                        .any(|r| r.endpoint == c.endpoint && r.at_frame > c.at_frame)
                })
                .map(|c| c.endpoint)
                .collect()
        })
        .unwrap_or_default();
    loop {
        log.gc_pass();
        if let Some(fault) = fault {
            awaiting.retain(|&ep| {
                if !fault.restarted(ep) {
                    return true;
                }
                replay_endpoint(routing, ep);
                false
            });
        }
        if !sleep_with_stop(Duration::from_millis(1), stop) {
            // One final pass so the report's retained-bytes gauge
            // reflects the end-of-run watermark.
            log.gc_pass();
            return;
        }
    }
}

/// Replay everything a restarted endpoint's log still retains. The read
/// is priced as one-sided READs inside [`PartitionLog::read_from`]; the
/// re-sends cross the fault wrapper, which accepts them now that the
/// endpoint is back.
fn replay_endpoint(routing: &Routing, ep: EndpointId) {
    let log = routing.log.as_ref().expect("replay implies logs");
    let read = {
        let mut l = log.logs[ep.0 as usize].lock();
        let start = l.first_seq();
        l.read_from(start)
    };
    for (_seq, bytes) in read.records {
        let n = bytes.len() as u64;
        let buf: Arc<[u8]> = Arc::from(bytes.into_boxed_slice());
        if routing.send_with_policy(|| routing.fabric.send_shared(ep, ep, Arc::clone(&buf))) {
            log.replayed_records.fetch_add(1, Ordering::Relaxed);
            log.replayed_bytes.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// The adaptive controller thread: every interval, retire drained tree
/// generations, sample the live workload (λ from spout emissions, queue
/// length from the fabric's transfer queue plus the acker's pending
/// trees), and let the self-adjusting controller re-plan `d*`; a changed
/// target triggers a generation switch. Forced switches (when
/// configured) replace the controller with deterministic thresholds on
/// `spout_emitted` — benchmarks and tests use those to make switching
/// reproducible.
fn adaptive_loop(
    cfg: &AdaptiveConfig,
    routing: &Routing,
    stats: &RunStats,
    fabric: &Arc<dyn FabricPath>,
    stop: &AtomicBool,
) {
    let relay = routing.relay.as_ref().expect("adaptive implies relay state");
    let epoch0 = Instant::now();
    let interval = SimDuration::from_nanos((cfg.interval.as_nanos() as u64).max(1));
    let mut monitor = WorkloadMonitor::new(interval, cfg.alpha, cfg.t_e_default);
    let mut controller = AdjustController::new(
        ControllerConfig::for_queue(cfg.queue_capacity, routing.placement.workers()),
        relay.current().d_star,
    );
    let mut last_emitted = 0u64;
    let mut next_forced = 0usize;
    while sleep_with_stop(cfg.interval, stop) {
        relay.try_retire_prev();
        let emitted = stats.spout_emitted.load(Ordering::Relaxed);
        let target = if cfg.forced_switches.is_empty() {
            monitor.record_arrivals(emitted.saturating_sub(last_emitted));
            let now = SimTime::from_nanos(epoch0.elapsed().as_nanos() as u64);
            let queue_len = fabric.queue_depth() as usize
                + routing.max_inbox_depth()
                + routing.ack.as_ref().map_or(0, |a| a.acker.lock().pending());
            let report = monitor.sample_with_links(now, queue_len, routing.link_pressure());
            match controller.decide(&report) {
                Decision::Hold => None,
                Decision::ScaleDown { d_star } | Decision::ScaleUp { d_star } => Some(d_star),
            }
        } else {
            let mut t = None;
            while next_forced < cfg.forced_switches.len()
                && emitted >= cfg.forced_switches[next_forced].0
            {
                t = Some(cfg.forced_switches[next_forced].1);
                next_forced += 1;
            }
            t
        };
        last_emitted = emitted;
        if let Some(new_d) = target {
            let new_d = new_d.max(1);
            if new_d != relay.current().d_star {
                switch_structure(cfg, routing, fabric, new_d);
            }
        }
    }
}

/// Reconfigure the relay plane to out-degree `new_d`: wait (bounded) for
/// the previous generation to drain so at most two are ever live,
/// optionally drive the paper's coordinator/agent switch protocol over
/// the data fabric, plan the per-origin moves, and publish the new
/// generation. In-flight frames on the demoted generation keep being
/// accepted until it drains (or the grace expires on a lossy run).
fn switch_structure(
    cfg: &AdaptiveConfig,
    routing: &Routing,
    fabric: &Arc<dyn FabricPath>,
    new_d: u32,
) {
    let relay = routing.relay.as_ref().expect("switching implies relay state");
    relay.await_prev_drained(cfg.drain_grace);
    let cur = relay.current();
    if cfg.switch_protocol {
        // One representative coordinator/agent session per switch: every
        // per-origin tree shares the same shape, so one session carries
        // the status/control/ACK exchange the paper describes. Protocol
        // endpoints sit above the shard endpoint range to avoid
        // collisions.
        let base = routing.placement.workers() * routing.shards;
        let _ = run_switch_over_fabric_at(Arc::clone(fabric), &cur.trees[0], new_d, base);
    }
    let mut total_moves = 0u64;
    let trees = if let Some((spec, loads)) = routing.topo_tree_inputs() {
        // Rack-aware rebuild: the new generation's rack entries route
        // over whichever uplinks are coolest *right now*. Moves are the
        // parent changes between generations (same accounting
        // `plan_switch` reports on the oblivious path).
        let next = build_relay_epoch_topo(cur.epoch + 1, new_d, &routing.placement, spec, &loads);
        for (old, new) in cur.trees.iter().zip(&next.trees) {
            total_moves += (0..new.n())
                .filter(|&i| old.parent(i) != new.parent(i))
                .count() as u64;
        }
        next.trees
    } else {
        let mut trees = Vec::with_capacity(cur.trees.len());
        for t in &cur.trees {
            let (next, plan) = plan_switch(t, new_d);
            total_moves += plan.moves.len() as u64;
            trees.push(next);
        }
        trees
    };
    relay.publish(Arc::new(RelayEpoch {
        epoch: cur.epoch + 1,
        d_star: new_d,
        trees,
        inflight: AtomicI64::new(0),
    }));
    relay.switches.fetch_add(1, Ordering::Relaxed);
    relay.switch_moves.fetch_add(total_moves, Ordering::Relaxed);
}

/// Where one spout is in its lifecycle. The drain phase (tracked runs
/// only) is a cooperative state machine, not a blocking loop: the owning
/// pipeline interleaves drain passes with frame dispatch and executor
/// work, so a draining spout never starves the executors sharing its
/// thread.
enum SpoutPhase {
    /// Still producing tuples.
    Emitting,
    /// Emissions exhausted; waiting out in-flight tracked trees,
    /// replaying expired ones, until `deadline`. `next_poll` rate-limits
    /// the acker polls to the configured interval.
    Draining { deadline: Instant, next_poll: Instant },
    /// EOS broadcast; nothing left to do.
    Done,
}

/// One spout task owned by a shard pipeline.
struct SpoutState {
    task: TaskId,
    spout: Box<dyn Spout>,
    /// Taken exactly once, at EOS broadcast.
    outbox: Option<Outbox>,
    /// Tracked ids still in flight: id → (tuple, attempt).
    pending: HashMap<u64, (Tuple, u32)>,
    since_prune: u32,
    phase: SpoutPhase,
}

/// Advance one spout by one step: emit one tuple, or run one drain pass.
/// Returns whether the step made progress (drives the pipeline's idle
/// backoff). A panicking `next_tuple` poisons the spout: its pending
/// tuples are failed loudly and EOS still departs so downstream drains.
fn spout_step(state: &mut SpoutState, routing: &Routing, stats: &RunStats) -> bool {
    match state.phase {
        SpoutPhase::Done => false,
        SpoutPhase::Emitting => {
            let next = catch_unwind(AssertUnwindSafe(|| state.spout.next_tuple()));
            let Ok(next) = next else {
                stats.op_panics.fetch_add(1, Ordering::Relaxed);
                if let Some(ack) = routing.ack.as_ref() {
                    ack.acker
                        .lock()
                        .expire_matching(SimTime::MAX, |id| state.pending.contains_key(&id));
                    ack.failed
                        .fetch_add(state.pending.len() as u64, Ordering::Relaxed);
                    if let Some(log) = &routing.log {
                        for id in state.pending.keys() {
                            log.note_resolved(root_of(*id));
                        }
                    }
                    state.pending.clear();
                }
                if let Some(ob) = state.outbox.take() {
                    ob.finish(routing, state.task);
                }
                state.phase = SpoutPhase::Done;
                return true;
            };
            let Some(t) = next else {
                match routing.ack.as_ref() {
                    Some(ack) => {
                        let now = Instant::now();
                        state.phase = SpoutPhase::Draining {
                            deadline: now + ack.config.drain_deadline,
                            next_poll: now,
                        };
                    }
                    None => {
                        if let Some(ob) = state.outbox.take() {
                            ob.finish(routing, state.task);
                        }
                        state.phase = SpoutPhase::Done;
                    }
                }
                return true;
            };
            let outbox = state.outbox.as_mut().expect("emitting spout has an outbox");
            stats.spout_emitted.fetch_add(1, Ordering::Relaxed);
            if t.id != 0 && t.id % LATENCY_SAMPLE == 0 {
                stats.emit_times.lock().insert(t.id, Instant::now());
            }
            match routing.ack.as_ref() {
                None => outbox.emit(routing, state.task, t, None),
                Some(ack) => {
                    let tracked = ack.next_root.fetch_add(1, Ordering::Relaxed) & ROOT_MASK;
                    // Register before emitting: an executor's ack can land
                    // before the routing layer arms the ledger, and XOR
                    // order-independence keeps that race benign — but only
                    // if the entry already exists.
                    ack.acker.lock().init(tracked, 0, ack.now());
                    state.pending.insert(tracked, (t.clone(), 0));
                    outbox.emit(routing, state.task, t, Some(tracked));
                    state.since_prune += 1;
                    if state.since_prune >= 64 {
                        state.since_prune = 0;
                        prune_completed(routing, ack, &mut state.pending);
                    }
                }
            }
            true
        }
        SpoutPhase::Draining {
            deadline,
            next_poll,
        } => {
            let now = Instant::now();
            if now < next_poll {
                return false;
            }
            let ack = routing.ack.as_ref().expect("draining implies tracking");
            // One drain pass: replay expired trees (fresh ledger key,
            // stable root for sink dedup), prune completed ones.
            let expired = {
                let mut acker = ack.acker.lock();
                acker.expire_matching(ack.now(), |id| state.pending.contains_key(&id))
            };
            let mut replayed = false;
            for id in expired {
                let Some((tuple, attempt)) = state.pending.remove(&id) else {
                    continue;
                };
                if attempt >= ack.config.max_replays {
                    ack.failed.fetch_add(1, Ordering::Relaxed);
                    // A failed root is resolved for log-GC purposes: its
                    // records will never be needed again.
                    if let Some(log) = &routing.log {
                        log.note_resolved(root_of(id));
                    }
                    continue;
                }
                let attempt = attempt + 1;
                let tracked = ((attempt as u64) << ROOT_BITS) | root_of(id);
                ack.acker.lock().init(tracked, 0, ack.now());
                state.pending.insert(tracked, (tuple.clone(), attempt));
                ack.replayed.fetch_add(1, Ordering::Relaxed);
                replayed = true;
                let outbox = state.outbox.as_mut().expect("draining spout has an outbox");
                outbox.emit(routing, state.task, tuple, Some(tracked));
            }
            prune_completed(routing, ack, &mut state.pending);
            if state.pending.is_empty() {
                if let Some(ob) = state.outbox.take() {
                    ob.finish(routing, state.task);
                }
                state.phase = SpoutPhase::Done;
                return true;
            }
            if now >= deadline {
                // Force-expire the remainder so late acks are rejected,
                // then count each as failed exactly once.
                ack.acker
                    .lock()
                    .expire_matching(SimTime::MAX, |id| state.pending.contains_key(&id));
                ack.failed
                    .fetch_add(state.pending.len() as u64, Ordering::Relaxed);
                if let Some(log) = &routing.log {
                    for id in state.pending.keys() {
                        log.note_resolved(root_of(*id));
                    }
                }
                state.pending.clear();
                if let Some(ob) = state.outbox.take() {
                    ob.finish(routing, state.task);
                }
                state.phase = SpoutPhase::Done;
                return true;
            }
            state.phase = SpoutPhase::Draining {
                deadline,
                next_poll: now + ack.config.poll_interval,
            };
            replayed
        }
    }
}

/// Drop roots the acker no longer tracks, counting them as acked. Only
/// acks can remove entries outside the drain loop (expiry is driven by
/// the owning spout), so anything gone from the acker completed. An
/// acked root is also reported to the partition log as resolved,
/// advancing the log's GC watermark past its records.
fn prune_completed(routing: &Routing, ack: &AckRuntime, pending: &mut HashMap<u64, (Tuple, u32)>) {
    let acker = ack.acker.lock();
    let before = pending.len();
    pending.retain(|id, _| {
        if acker.contains(*id) {
            return true;
        }
        if let Some(log) = &routing.log {
            log.note_resolved(root_of(*id));
        }
        false
    });
    ack.acked
        .fetch_add((before - pending.len()) as u64, Ordering::Relaxed);
}

/// Decode and dispatch one fabric frame received by `worker`'s pipeline.
/// Framing is validated once per frame (views, nothing materialized);
/// data items are handed to executors as shared [`LazyTuple`]s, and
/// `scratch` is the pipeline's reusable destination buffer, so the
/// steady-state dispatch path allocates nothing. A frame that is
/// truncated, fails to validate, carries an unknown tag, or addresses a
/// task this run does not host is dropped and counted
/// (`RunStats::dropped_frames`) — a bad peer must not crash the worker.
fn on_frame(
    worker: u32,
    msg: &whale_net::LiveMessage,
    routing: &Routing,
    scratch: &mut Vec<TaskId>,
) {
    let drop_frame = || {
        routing.stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
    };
    let deliver = |dst: TaskId, msg: ExecMsg| {
        if !routing.deliver(dst, msg) {
            drop_frame();
        }
    };
    // Fan one parsed worker message out through the reusable scratch.
    let deliver_worker = |view: &WorkerMessageView<'_>,
                          tracked: Option<u64>,
                          scratch: &mut Vec<TaskId>| {
        match routing.lazy_tuple(&msg.payload, view.tuple()) {
            Ok(lazy) => {
                codec::dispatch_worker_message_into(view, scratch);
                for &dst in scratch.iter() {
                    let tag = tracked.map(|tr| AckTag {
                        tracked: tr,
                        anchor: anchor_for(tr, dst),
                    });
                    routing.note_lazy_delivery(&lazy);
                    deliver(dst, ExecMsg::Data(lazy.clone(), tag));
                }
            }
            Err(_) => drop_frame(),
        }
    };
    let deliver_instance = |view: &InstanceMessageView<'_>, tracked: Option<u64>| {
        match routing.lazy_tuple(&msg.payload, view.tuple()) {
            Ok(lazy) => {
                // The anchor is derived, not carried: the same pure
                // function the sender armed the ledger with.
                let tag = tracked.map(|tr| AckTag {
                    tracked: tr,
                    anchor: anchor_for(tr, view.dst()),
                });
                routing.note_lazy_delivery(&lazy);
                deliver(view.dst(), ExecMsg::Data(lazy, tag));
            }
            Err(_) => drop_frame(),
        }
    };
    {
        let mut buf = msg.payload.bytes();
        if buf.is_empty() {
            return;
        }
        let tag = buf.get_u8();
        match tag {
            TAG_RELAY => {
                // Fixed-offset header; the remaining slice is the item.
                // The original payload (tag + header + item) is handed
                // along untouched so forwards reuse the received bytes.
                let Ok(h) = RelayHeader::decode(&mut buf) else {
                    drop_frame();
                    return;
                };
                routing.on_relay_frame(worker, h, &msg.payload, buf);
            }
            TAG_RELAY_EOS => {
                if buf.remaining() < 16 {
                    drop_frame();
                    return;
                }
                let origin = buf.get_u32_le();
                let epoch = buf.get_u32_le();
                let comp = ComponentId(buf.get_u32_le());
                let src = TaskId(buf.get_u32_le());
                routing.on_relay_eos(worker, origin, epoch, comp, src, &msg.payload);
            }
            TAG_INSTANCE => match InstanceMessageView::parse(buf) {
                Ok(view) => deliver_instance(&view, None),
                Err(_) => drop_frame(),
            },
            TAG_WORKER => match WorkerMessageView::parse(buf) {
                // One framing validation, fanned out to local executors
                // as views over the shared receive buffer.
                Ok(view) => deliver_worker(&view, None, scratch),
                Err(_) => drop_frame(),
            },
            TAG_INSTANCE_TRACKED => {
                if buf.remaining() < 8 {
                    drop_frame();
                    return;
                }
                let tracked = buf.get_u64_le();
                match InstanceMessageView::parse(buf) {
                    Ok(view) => deliver_instance(&view, Some(tracked)),
                    Err(_) => drop_frame(),
                }
            }
            TAG_WORKER_TRACKED => {
                if buf.remaining() < 8 {
                    drop_frame();
                    return;
                }
                let tracked = buf.get_u64_le();
                match WorkerMessageView::parse(buf) {
                    Ok(view) => deliver_worker(&view, Some(tracked), scratch),
                    Err(_) => drop_frame(),
                }
            }
            TAG_EOS => {
                if buf.remaining() < 8 {
                    drop_frame();
                    return;
                }
                let src = TaskId(buf.get_u32_le());
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 4 {
                    drop_frame();
                    return;
                }
                for _ in 0..n {
                    let dst = TaskId(buf.get_u32_le());
                    deliver(dst, ExecMsg::Eos(src));
                }
            }
            _ => drop_frame(),
        }
    }
}

/// Test-only stand-in for the old per-worker dispatcher thread: drain a
/// fabric receiver through [`on_frame`] until the endpoint closes. The
/// live runtime dispatches inline on the shard pipelines instead.
#[cfg(test)]
fn dispatcher_loop(worker: u32, rx: Receiver<whale_net::LiveMessage>, routing: &Routing) {
    let mut scratch = Vec::new();
    while let Ok(msg) = rx.recv() {
        on_frame(worker, &msg, routing, &mut scratch);
    }
}

/// One bolt task owned by a shard pipeline.
struct BoltState {
    task: TaskId,
    comp: ComponentId,
    bolt: Box<dyn Bolt>,
    /// Taken exactly once, at EOS broadcast.
    outbox: Option<Outbox>,
    eos_seen: HashSet<TaskId>,
    expected_eos: usize,
    /// Tracked ids already XOR'd into the acker (a duplicated frame must
    /// not ack the ledger twice) and roots already executed (replays and
    /// duplicates are acked but not re-executed).
    acked_tracked: HashSet<u64>,
    seen_roots: HashSet<u64>,
    /// A panicking `execute`/`finish` poisons the task: later tuples are
    /// dropped unprocessed and unacked (they time out into replays on
    /// tracked runs), but EOS still departs so downstream drains.
    poisoned: bool,
    done: bool,
}

/// Process one executor message for a bolt.
fn bolt_handle(state: &mut BoltState, msg: ExecMsg, routing: &Routing, stats: &RunStats) {
    if state.done {
        return;
    }
    match msg {
        ExecMsg::Data(t, tag) => {
            if state.poisoned {
                return;
            }
            let mut fresh = true;
            if let (Some(tag), Some(ack)) = (tag, routing.ack.as_ref()) {
                if state.acked_tracked.insert(tag.tracked) {
                    ack.acker.lock().ack(tag.tracked, tag.anchor);
                }
                fresh = state.seen_roots.insert(root_of(tag.tracked));
                if !fresh {
                    ack.dedup_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            if !fresh {
                return;
            }
            stats.executed[state.comp.0 as usize].fetch_add(1, Ordering::Relaxed);
            let id = t.id();
            if id != 0 && id % LATENCY_SAMPLE == 0 {
                let start = stats.emit_times.lock().get(&id).copied();
                if let Some(start) = start {
                    let ns = start.elapsed().as_nanos() as u64;
                    stats.delivery_ns.lock().push(ns);
                }
            }
            let outbox = state.outbox.as_mut().expect("live bolt has an outbox");
            let mut emitter = OutboxEmitter {
                routing,
                src: state.task,
                outbox,
            };
            let bolt = &mut state.bolt;
            let was_materialized = t.is_materialized();
            match catch_unwind(AssertUnwindSafe(|| bolt.execute_lazy(&t, &mut emitter))) {
                Err(_) => {
                    state.poisoned = true;
                    stats.op_panics.fetch_add(1, Ordering::Relaxed);
                }
                // Corrupt wire bytes (deferred UTF-8 validation failed):
                // drop the tuple, keep the task healthy.
                Ok(Err(_)) => {
                    stats.dropped_frames.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Ok(())) => {}
            }
            if !was_materialized && t.is_materialized() {
                stats.tuples_materialized.fetch_add(1, Ordering::Relaxed);
            }
        }
        ExecMsg::Eos(src) => {
            state.eos_seen.insert(src);
            if state.eos_seen.len() >= state.expected_eos {
                finish_bolt(state, routing, stats);
            }
        }
    }
}

/// Close out a bolt: run its `finish` hook (skipped for poisoned tasks —
/// a panicking operator gets no second invocation) and broadcast EOS.
fn finish_bolt(state: &mut BoltState, routing: &Routing, stats: &RunStats) {
    if state.done {
        return;
    }
    state.done = true;
    let Some(mut ob) = state.outbox.take() else {
        return;
    };
    if !state.poisoned {
        let mut emitter = OutboxEmitter {
            routing,
            src: state.task,
            outbox: &mut ob,
        };
        let bolt = &mut state.bolt;
        if catch_unwind(AssertUnwindSafe(|| bolt.finish(&mut emitter))).is_err() {
            state.poisoned = true;
            stats.op_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
    ob.finish(routing, state.task);
}

/// Fabric frames and cross-shard messages consumed per scheduling pass
/// before the pipeline rotates to its other work (keeps one flooded
/// source from starving the rest).
const PIPELINE_BATCH: usize = 128;
/// Idle passes of busy-spinning before the pipeline starts sleeping.
const IDLE_SPINS: u32 = 64;
const IDLE_SLEEP: Duration = Duration::from_micros(50);

/// One shard-owned pipeline: the whole hot path for its slice of tasks —
/// fabric reader, routing (inside each task's outbox), execution, and
/// sink — on one thread, with no central dispatcher. See the module docs.
struct ShardPipeline {
    /// Flat shard id (`worker * shards + shard`) — also the fabric
    /// endpoint this pipeline reads.
    flat: usize,
    worker: u32,
    fabric_rx: Receiver<whale_net::LiveMessage>,
    inbox_rx: Receiver<(TaskId, ExecMsg)>,
    spouts: Vec<SpoutState>,
    bolts: HashMap<TaskId, BoltState>,
    /// Signals the run driver once every owned task has completed (the
    /// pipeline keeps relaying/draining frames until the fabric closes).
    done_tx: Sender<()>,
    /// Reusable destination-id buffer for worker-message fan-out, so the
    /// steady-state dispatch path allocates nothing per frame.
    scratch: Vec<TaskId>,
}

impl ShardPipeline {
    fn run(mut self, routing: &Routing, stats: &RunStats) {
        CURRENT_SHARD.with(|c| c.set(Some(self.flat)));
        // A bolt with no upstream can never receive EOS; close it out
        // up front instead of hanging the pipeline.
        for b in self.bolts.values_mut() {
            if b.expected_eos == 0 {
                finish_bolt(b, routing, stats);
            }
        }
        self.drain_local(routing, stats);
        let deadline = routing.config.run_deadline.map(|d| Instant::now() + d);
        let mut fabric_open = true;
        let mut signaled = false;
        let mut idle_passes = 0u32;
        loop {
            let mut progress = false;
            for _ in 0..PIPELINE_BATCH {
                match self.fabric_rx.try_recv() {
                    Ok(msg) => {
                        on_frame(self.worker, &msg, routing, &mut self.scratch);
                        progress = true;
                        self.drain_local(routing, stats);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        fabric_open = false;
                        break;
                    }
                }
            }
            for _ in 0..PIPELINE_BATCH {
                match self.inbox_rx.try_recv() {
                    Ok((dst, msg)) => {
                        self.handle_exec(dst, msg, routing, stats);
                        progress = true;
                        self.drain_local(routing, stats);
                    }
                    Err(_) => break,
                }
            }
            for i in 0..self.spouts.len() {
                if spout_step(&mut self.spouts[i], routing, stats) {
                    progress = true;
                }
            }
            if self.drain_local(routing, stats) {
                progress = true;
            }
            let all_done = self
                .spouts
                .iter()
                .all(|s| matches!(s.phase, SpoutPhase::Done))
                && self.bolts.values().all(|b| b.done);
            if all_done && !signaled {
                signaled = true;
                let _ = self.done_tx.send(());
            }
            if all_done && !fabric_open {
                break;
            }
            if progress {
                idle_passes = 0;
                continue;
            }
            if !all_done {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        // Liveness backstop, checked only on idle passes
                        // (already-queued traffic is still processed): a
                        // lost EOS degrades the run but never hangs it.
                        // Finishing still broadcasts this task's own EOS
                        // so downstream can drain.
                        for b in self.bolts.values_mut() {
                            if !b.done {
                                stats.deadline_exits.fetch_add(1, Ordering::Relaxed);
                                finish_bolt(b, routing, stats);
                            }
                        }
                        self.drain_local(routing, stats);
                        continue;
                    }
                }
            }
            idle_passes += 1;
            if idle_passes < IDLE_SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        CURRENT_SHARD.with(|c| c.set(None));
    }

    /// Route one executor message to the owning task. Messages for tasks
    /// this shard does not own (a spout task, or a stale frame for a
    /// completed run) are ignored, matching the old dispatcher's
    /// fire-and-forget channel sends.
    fn handle_exec(&mut self, dst: TaskId, msg: ExecMsg, routing: &Routing, stats: &RunStats) {
        if let Some(state) = self.bolts.get_mut(&dst) {
            bolt_handle(state, msg, routing, stats);
        }
    }

    /// Drain the thread-local same-shard loopback queue. Executions may
    /// push more (a bolt emitting to a same-shard successor), so this
    /// loops until the queue is genuinely empty.
    fn drain_local(&mut self, routing: &Routing, stats: &RunStats) -> bool {
        let mut any = false;
        while let Some((dst, msg)) = LOCAL_QUEUE.with_borrow_mut(|q| q.pop_front()) {
            self.handle_exec(dst, msg, routing, stats);
            any = true;
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{FnBolt, IterSpout};
    use crate::tuple::{Schema, Value};

    fn counting_topology(machines: u32, bolt_p: u32) -> (Topology, Operators) {
        let mut b = crate::topology::TopologyBuilder::new();
        b.spout("src", 1, Schema::new(vec!["n"]))
            .bolt("double", bolt_p, Schema::new(vec!["n"]))
            .bolt("sink", 1, Schema::new(vec!["n"]))
            .connect("src", "double", Grouping::All)
            .connect("double", "sink", Grouping::Shuffle);
        let t = b.build().unwrap();
        let _ = machines;
        let ops = Operators::new()
            .spout("src", |_| {
                Box::new(IterSpout::new(
                    (0..100i64).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
                ))
            })
            .bolt("double", |_| {
                Box::new(FnBolt::new(|t: &Tuple, out: &mut dyn Emitter| {
                    let x = t.get(0).unwrap().as_i64().unwrap();
                    out.emit(Tuple::new(vec![Value::I64(x * 2)]));
                }))
            })
            .bolt("sink", |_| {
                Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
            });
        (t, ops)
    }

    fn run(mode: CommMode, zero_copy: bool, machines: u32, bolt_p: u32) -> RunReport {
        let (t, ops) = counting_topology(machines, bolt_p);
        run_topology(
            t,
            ops,
            LiveConfig {
                machines,
                comm_mode: mode,
                zero_copy,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        )
    }

    #[test]
    fn all_grouping_fans_out_to_every_instance() {
        let r = run(CommMode::WorkerOriented, true, 4, 8);
        // 100 source tuples × 8 instances.
        assert_eq!(r.executed[1], 800);
        // Each doubled tuple shuffles to the single sink.
        assert_eq!(r.executed[2], 800);
        assert_eq!(r.spout_emitted, 100);
    }

    #[test]
    fn instance_oriented_matches_results_with_more_serialization() {
        let io = run(CommMode::InstanceOriented, false, 4, 8);
        let wo = run(CommMode::WorkerOriented, true, 4, 8);
        // Same data-plane results...
        assert_eq!(io.executed, wo.executed);
        // ...but instance-oriented serializes per destination: the
        // all-grouping stage costs 100×8 serializations instead of 100×1
        // (the shuffle stage is 1-fanout and serializes once either way).
        assert_eq!(io.serializations - wo.serializations, 100 * (8 - 1));
        // And moves more bytes (copied path) than worker-oriented fabric
        // messages.
        assert!(io.fabric_messages > wo.fabric_messages);
    }

    #[test]
    fn zero_copy_uses_shared_path() {
        let r = run(CommMode::WorkerOriented, true, 4, 8);
        assert_eq!(r.copied_bytes, 0);
        assert!(r.shared_bytes > 0);
        let r = run(CommMode::WorkerOriented, false, 4, 8);
        assert_eq!(r.shared_bytes, 0);
        assert!(r.copied_bytes > 0);
    }

    #[test]
    fn single_machine_runs_entirely_local() {
        let r = run(CommMode::WorkerOriented, true, 1, 4);
        assert_eq!(r.executed[1], 400);
        // EOS frames may be local too: everything is on one worker.
        assert_eq!(r.copied_bytes + r.shared_bytes, 0);
    }

    #[test]
    fn relay_multicast_equals_direct_results() {
        let (t, ops) = counting_topology(8, 16);
        let relayed = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 8,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: Some(2),
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
        let direct = run(CommMode::WorkerOriented, true, 8, 16);
        assert_eq!(relayed.executed, direct.executed);
        assert_eq!(relayed.spout_emitted, direct.spout_emitted);
        assert!(relayed.relay_forwards > 0, "relays must forward");
        assert_eq!(direct.relay_forwards, 0);
    }

    #[test]
    fn relay_offloads_the_source() {
        // With 8 workers and d* = 2, the source sends to its 2 tree
        // children; relays forward the remaining 5 frames per broadcast
        // tuple. 100 broadcast tuples → 500 relay forwards (the shuffle
        // stage to the sink is not relayed).
        let (t, ops) = counting_topology(8, 16);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 8,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: Some(2),
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.relay_forwards, 100 * 5);
        // Still exactly one serialization per broadcast tuple.
        assert_eq!(r.executed[1], 100 * 16);
    }

    #[test]
    fn dedicated_senders_match_inline_results() {
        let (t, ops) = counting_topology(4, 8);
        let queued = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 4,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: None,
                dedicated_senders: true,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
        let inline = run(CommMode::WorkerOriented, true, 4, 8);
        assert_eq!(queued.executed, inline.executed);
        assert_eq!(queued.spout_emitted, inline.spout_emitted);
        assert_eq!(queued.serializations, inline.serializations);
    }

    #[test]
    fn dedicated_senders_with_relay_tree() {
        let (t, ops) = counting_topology(8, 16);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 8,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: Some(2),
                dedicated_senders: true,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.executed[1], 100 * 16);
        assert_eq!(r.relay_forwards, 100 * 5);
    }

    #[test]
    fn delivery_latency_sampled() {
        let r = run(CommMode::WorkerOriented, true, 4, 8);
        // 100 source tuples with ids 0..100: ids 8,16,...,96 are sampled,
        // each executed by 8 instances → at least some dozens of samples.
        assert!(
            r.delivery_ns.len() >= 50,
            "samples = {}",
            r.delivery_ns.len()
        );
        assert!(r.mean_delivery() > std::time::Duration::ZERO);
        assert!(r.p99_delivery() >= r.mean_delivery() / 2);
    }

    #[test]
    fn relay_node_worker_mapping_skips_origin() {
        assert_eq!(relay_node_worker(0, 0, 4), WorkerId(1));
        assert_eq!(relay_node_worker(0, 2, 4), WorkerId(3));
        assert_eq!(relay_node_worker(2, 0, 4), WorkerId(0));
        assert_eq!(relay_node_worker(2, 1, 4), WorkerId(1));
        assert_eq!(relay_node_worker(2, 2, 4), WorkerId(3));
    }

    #[test]
    #[should_panic(expected = "worker-oriented")]
    fn relay_requires_worker_oriented() {
        let (t, ops) = counting_topology(4, 4);
        let _ = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 4,
                comm_mode: CommMode::InstanceOriented,
                zero_copy: false,
                multicast_d_star: Some(2),
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
    }

    #[test]
    fn run_survives_panicking_bolt_and_tears_down_in_order() {
        // A panicking executor must not wedge the run: every thread is
        // still joined, the fabric endpoints are closed so dispatchers
        // exit, and the report records the failures.
        let mut b = crate::topology::TopologyBuilder::new();
        b.spout("src", 1, Schema::new(vec!["n"]))
            .bolt("boom", 4, Schema::new(vec!["n"]))
            .connect("src", "boom", Grouping::All);
        let t = b.build().unwrap();
        let ops = Operators::new()
            .spout("src", |_| {
                Box::new(IterSpout::new(
                    (0..10i64).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
                ))
            })
            .bolt("boom", |_| {
                Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {
                    panic!("injected bolt failure")
                }))
            });
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 2,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
        assert!(r.thread_panics >= 1, "panics = {}", r.thread_panics);
        assert_eq!(r.spout_emitted, 10);
        assert_eq!(
            r.outcome,
            RunOutcome::Degraded {
                thread_panics: r.thread_panics,
                failed_sends: 0,
                failed_tuples: 0,
                deadline_exits: 0,
            }
        );
        assert!(!r.outcome.is_clean());
    }

    #[test]
    fn missing_spout_is_a_config_error_not_a_panic() {
        let (t, _ops) = counting_topology(2, 4);
        let ops = Operators::new()
            .bolt("double", |_| {
                Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
            })
            .bolt("sink", |_| {
                Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
            });
        let r = run_topology(t, ops, LiveConfig::default());
        assert_eq!(
            r.outcome,
            RunOutcome::ConfigError(BuildError::MissingSpout("src".into()))
        );
        // Nothing ran: the report is all zeros with one slot per component.
        assert_eq!(r.executed, vec![0, 0, 0]);
        assert_eq!(r.spout_emitted, 0);
        assert_eq!(r.fabric_messages, 0);
        assert_eq!(r.thread_panics, 0);
        // The reason round-trips through Display for operators' logs.
        if let RunOutcome::ConfigError(e) = &r.outcome {
            assert!(e.to_string().contains("src"));
        }
    }

    #[test]
    fn missing_bolt_is_a_config_error_not_a_panic() {
        let (t, _ops) = counting_topology(2, 4);
        let ops = Operators::new().spout("src", |_| {
            Box::new(IterSpout::new(
                (0..10i64).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        });
        let r = run_topology(t, ops, LiveConfig::default());
        assert!(matches!(
            &r.outcome,
            RunOutcome::ConfigError(BuildError::MissingBolt(name)) if name == "double" || name == "sink"
        ));
        assert_eq!(r.spout_emitted, 0, "no spout thread may have started");
    }

    #[test]
    fn clean_run_reports_clean_outcome() {
        let r = run(CommMode::WorkerOriented, true, 4, 8);
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert!(r.outcome.is_clean());
        assert_eq!(r.send_errors, 0);
        assert_eq!(r.batches_flushed, 0, "per-send path never batches");
        assert_eq!(r.mean_batch_size, 0.0);
    }

    #[test]
    fn ring_fabric_matches_per_send_results_and_batches() {
        let (t, ops) = counting_topology(4, 8);
        let ring = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 4,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: FabricKind::Ring(whale_net::RingConfig::default()),
                ..LiveConfig::default()
            },
        );
        let direct = run(CommMode::WorkerOriented, true, 4, 8);
        // Same data-plane results through the batched path...
        assert_eq!(ring.executed, direct.executed);
        assert_eq!(ring.spout_emitted, direct.spout_emitted);
        assert_eq!(ring.fabric_messages, direct.fabric_messages);
        assert_eq!(ring.shared_bytes, direct.shared_bytes);
        // ...but delivered through MMS/WTL batches, cleanly.
        assert!(ring.batches_flushed > 0, "ring path must batch");
        assert!(ring.mean_batch_size >= 1.0);
        assert_eq!(ring.outcome, RunOutcome::Clean);
        assert_eq!(ring.send_errors, 0);
    }

    #[test]
    fn ring_fabric_with_relay_tree_and_dedicated_senders() {
        let (t, ops) = counting_topology(8, 16);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 8,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: Some(2),
                dedicated_senders: true,
                fabric: FabricKind::Ring(whale_net::RingConfig::default()),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.executed[1], 100 * 16);
        assert_eq!(r.relay_forwards, 100 * 5);
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert!(r.batches_flushed > 0);
    }

    #[test]
    fn one_sided_fabric_matches_per_send_results() {
        let (t, ops) = counting_topology(4, 8);
        let one_sided = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 4,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: FabricKind::OneSided(whale_net::OneSidedConfig::default()),
                ..LiveConfig::default()
            },
        );
        let direct = run(CommMode::WorkerOriented, true, 4, 8);
        // Same data-plane results through the remote-fetch path...
        assert_eq!(one_sided.executed, direct.executed);
        assert_eq!(one_sided.spout_emitted, direct.spout_emitted);
        assert_eq!(one_sided.fabric_messages, direct.fabric_messages);
        assert_eq!(one_sided.shared_bytes, direct.shared_bytes);
        // ...delivered by the fetcher, cleanly, with no push batching.
        assert_eq!(one_sided.batches_flushed, 0, "fetch path never batches");
        assert_eq!(one_sided.outcome, RunOutcome::Clean);
        assert_eq!(one_sided.send_errors, 0);
    }

    #[test]
    fn one_sided_fabric_with_relay_tree_and_dedicated_senders() {
        let (t, ops) = counting_topology(8, 16);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 8,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: Some(2),
                dedicated_senders: true,
                fabric: FabricKind::OneSided(whale_net::OneSidedConfig::default()),
                ..LiveConfig::default()
            },
        );
        // The relay tree forwards fetched Arc frames unchanged.
        assert_eq!(r.executed[1], 100 * 16);
        assert_eq!(r.relay_forwards, 100 * 5);
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert!(r.shared_bytes > 0, "relay forwards stay zero-copy");
    }

    #[test]
    fn dispatcher_drops_garbage_frames_instead_of_crashing() {
        let (t, _ops) = counting_topology(2, 4);
        let cluster = ClusterSpec::new(2, 1, 16);
        let placement = Placement::even(&t, &cluster);
        let fabric = Arc::new(whale_net::LiveFabric::new());
        let rx = fabric.register(EndpointId(0)).unwrap();
        let routing = Arc::new(Routing {
            topology: t,
            placement,
            config: LiveConfig {
                machines: 2,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: false,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
            fabric: Arc::clone(&fabric) as Arc<dyn FabricPath>,
            pool: BufferPool::default(),
            shard_inboxes: Vec::new(),
            shards: 1,
            stats: Arc::new(RunStats::default()),
            ack: None,
            relay: None,
            log: None,
            tracker: None,
        });
        let r2 = Arc::clone(&routing);
        let h = std::thread::spawn(move || dispatcher_loop(0, rx, &r2));

        let mut frames: Vec<Vec<u8>> = vec![
            vec![99],                     // unknown tag
            vec![TAG_RELAY, 1, 2],        // truncated relay header
            vec![TAG_RELAY_EOS, 0, 0, 0], // truncated relay EOS
            vec![TAG_INSTANCE, 1, 2, 3],  // truncated instance message
            vec![TAG_WORKER],             // truncated worker message
            vec![TAG_EOS, 0],             // truncated EOS header
        ];
        // Relay frame with a truncated header (12 of 20 bytes).
        let mut f = vec![TAG_RELAY];
        f.extend_from_slice(&[0u8; 12]);
        frames.push(f);
        // Well-formed relay header on a worker with the relay path off.
        let mut f = vec![TAG_RELAY];
        f.extend_from_slice(&[0u8; RelayHeader::WIRE_BYTES]);
        frames.push(f);
        // EOS claiming 100 destinations but carrying none.
        let mut f = vec![TAG_EOS];
        f.extend_from_slice(&0u32.to_le_bytes());
        f.extend_from_slice(&100u32.to_le_bytes());
        frames.push(f);
        // Well-formed instance message addressed to a task with no inbox.
        let msg = InstanceMessage {
            src: TaskId(0),
            dst: TaskId(7),
            tuple: Tuple::new(vec![Value::I64(1)]),
        };
        let mut framed = BytesMut::with_capacity(1 + msg.wire_bytes());
        framed.put_u8(TAG_INSTANCE);
        framed.put_slice(&msg.encode());
        frames.push(framed.freeze().to_vec());

        let expected = frames.len() as u64;
        for f in &frames {
            fabric
                .send_copied(EndpointId(1), EndpointId(0), f)
                .unwrap();
        }
        fabric.deregister(EndpointId(0));
        h.join().expect("dispatcher must not panic on garbage");
        assert_eq!(
            routing.stats.dropped_frames.load(Ordering::Relaxed),
            expected
        );
    }

    #[test]
    fn report_metrics_snapshot() {
        let r = run(CommMode::WorkerOriented, true, 4, 8);
        let m = r.metrics();
        assert_eq!(m.counter("dsps.spout_emitted"), Some(100));
        assert_eq!(m.counter("dsps.executed.component_1"), Some(800));
        assert_eq!(m.counter("dsps.dropped_frames"), Some(0));
        assert_eq!(m.counter("dsps.thread_panics"), Some(0));
        assert!(m.counter("dsps.fabric.messages").unwrap() > 0);
        let s = m.summary("dsps.delivery_ns").unwrap();
        assert!(s.count >= 50, "samples = {}", s.count);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn hot_path_reuses_pooled_encode_buffers() {
        // 100 broadcast tuples to 8 instances across 4 machines produce
        // hundreds of frames; the pool must serve almost all of them from
        // reused buffers and every buffer must be back after the run.
        for zero_copy in [true, false] {
            let r = run(CommMode::WorkerOriented, zero_copy, 4, 8);
            assert!(
                r.pool_hits > 0,
                "zero_copy={zero_copy}: buffers returned after use are reused"
            );
            assert!(
                r.pool_hit_rate > 0.9,
                "zero_copy={zero_copy}: steady state must stop allocating, \
                 hit rate {:.3} (hits {}, misses {})",
                r.pool_hit_rate,
                r.pool_hits,
                r.pool_misses
            );
            assert!(r.pool_high_watermark >= 1);
            let m = r.metrics();
            assert_eq!(m.counter("dsps.pool.hits"), Some(r.pool_hits));
            assert!(m.gauge("dsps.pool.hit_rate").unwrap() > 0.9);
        }
    }

    #[test]
    fn deterministic_tuple_counts_across_modes_and_scales() {
        for machines in [1, 2, 8] {
            for p in [1, 4, 16] {
                let r = run(CommMode::WorkerOriented, true, machines, p);
                assert_eq!(r.executed[1] as u32, 100 * p, "machines={machines} p={p}");
            }
        }
    }

    /// spout → sink directly: the acker tracks spout emissions to their
    /// first-hop subscribers, so a one-edge topology makes the delivery
    /// accounting exact.
    fn ack_topology(n: i64, fanout: u32) -> (Topology, Operators) {
        let mut b = crate::topology::TopologyBuilder::new();
        b.spout("src", 1, Schema::new(vec!["n"]))
            .bolt("sink", fanout, Schema::new(vec!["n"]))
            .connect("src", "sink", Grouping::All);
        let t = b.build().unwrap();
        let ops = Operators::new()
            .spout("src", move |_| {
                Box::new(IterSpout::new(
                    (0..n).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
                ))
            })
            .bolt("sink", |_| {
                Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
            });
        (t, ops)
    }

    #[test]
    fn tracked_clean_run_acks_every_tuple() {
        let (t, ops) = ack_topology(200, 4);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 4,
                ack: Some(AckConfig::default()),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert_eq!(r.spout_emitted, 200);
        assert_eq!(r.tuples_acked, 200);
        assert_eq!(r.tuples_failed, 0);
        assert_eq!(r.tuples_replayed, 0);
        // Every instance executed every root exactly once.
        assert_eq!(r.executed[1], 200 * 4);
    }

    #[test]
    fn tracked_run_replays_through_injected_drops_without_silent_loss() {
        for fabric in [
            FabricKind::PerSend,
            FabricKind::Ring(whale_net::RingConfig::default()),
            FabricKind::OneSided(whale_net::OneSidedConfig::default()),
        ] {
            let (t, ops) = ack_topology(150, 2);
            let r = run_topology(
                t,
                ops,
                LiveConfig {
                    machines: 4,
                    fabric,
                    ack: Some(AckConfig {
                        timeout: Duration::from_millis(50),
                        max_replays: 20,
                        drain_deadline: Duration::from_secs(20),
                        eos_redundancy: 4,
                        ..AckConfig::default()
                    }),
                    fault: Some(FaultPlan::uniform_drops(7, 0.2)),
                    run_deadline: Some(Duration::from_secs(5)),
                    ..LiveConfig::default()
                },
            );
            // At-least-once accounting: every emission ends acked or
            // failed — never silently lost.
            assert_eq!(
                r.tuples_acked + r.tuples_failed,
                r.spout_emitted,
                "fabric run must account for every tuple"
            );
            assert!(r.fault_drops > 0, "the plan must actually drop frames");
            assert!(r.tuples_replayed > 0, "drops must trigger replays");
            // An acked root reached every subscriber; dedup keeps each
            // execution unique per instance.
            assert!(r.executed[1] >= r.tuples_acked);
            assert!(r.executed[1] <= 2 * r.spout_emitted);
        }
    }

    #[test]
    fn exhausted_send_deadline_degrades_instead_of_livelocking() {
        // Every remote send is stuck Full forever: the policy deadline
        // must fail frames loudly and the run deadline must reap the
        // starved executors — the run terminates on its own.
        let (t, ops) = ack_topology(20, 2);
        let plan = FaultPlan {
            seed: 1,
            default_link: whale_net::LinkFaults {
                full_burst: 1.0,
                full_burst_len: u32::MAX,
                ..whale_net::LinkFaults::default()
            },
            ..FaultPlan::default()
        };
        let started = Instant::now();
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 2,
                send: SendPolicy {
                    spin: 4,
                    yields: 4,
                    park_initial: Duration::from_micros(50),
                    park_max: Duration::from_micros(200),
                    deadline: Duration::from_millis(5),
                },
                fault: Some(plan),
                run_deadline: Some(Duration::from_millis(500)),
                ..LiveConfig::default()
            },
        );
        assert!(r.send_failed > 0, "stuck sends must fail loudly");
        assert!(r.send_retries > 0);
        assert!(r.deadline_exits > 0, "starved executors must be reaped");
        assert!(matches!(r.outcome, RunOutcome::Degraded { .. }));
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "bounded backoff must terminate promptly"
        );
        let m = r.metrics();
        assert_eq!(m.counter("dsps.send.failed"), Some(r.send_failed));
        assert_eq!(m.counter("dsps.send.retries"), Some(r.send_retries));
    }

    #[test]
    fn monitor_interval_records_timeline() {
        let (t, ops) = counting_topology(4, 8);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 4,
                monitor_interval: Some(Duration::from_millis(1)),
                ..LiveConfig::default()
            },
        );
        assert!(!r.timeline.is_empty(), "the final sample always lands");
        let last = r.timeline.last().unwrap();
        assert_eq!(last.spout_emitted, 100);
        assert!(last.executed > 0);
        // Samples are orderable and the series export is wired through.
        for w in r.timeline.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let m = r.metrics();
        assert!(m.get("dsps.timeline.spout_emitted").is_some());
        assert!(m.get("dsps.timeline.executed").is_some());
    }

    #[test]
    fn tracked_run_with_crashed_endpoint_accounts_for_every_tuple() {
        // Crash worker 1 after its first 10 addressed frames: tuples
        // that can no longer reach it exhaust their replay budget and
        // are failed — counted, not lost.
        let (t, ops) = ack_topology(60, 2);
        let plan = FaultPlan {
            seed: 11,
            crashes: vec![whale_net::EndpointCrash {
                endpoint: EndpointId(1),
                at_frame: 10,
            }],
            ..FaultPlan::default()
        };
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 2,
                ack: Some(AckConfig {
                    timeout: Duration::from_millis(30),
                    max_replays: 3,
                    drain_deadline: Duration::from_secs(10),
                    eos_redundancy: 2,
                    ..AckConfig::default()
                }),
                fault: Some(plan),
                run_deadline: Some(Duration::from_secs(5)),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.tuples_acked + r.tuples_failed, r.spout_emitted);
        assert!(r.fault_crashed_sends > 0, "the crash must reject sends");
        assert!(r.tuples_failed > 0, "unreachable tuples must fail loudly");
        assert!(matches!(r.outcome, RunOutcome::Degraded { .. }));
    }

    #[test]
    fn crash_with_restart_and_log_recovers_every_tuple_without_acker_replays() {
        // Same crash as above, but the endpoint restarts and the run
        // writes through a partition log: the recovery thread replays
        // the crashed slice from the log, so every tuple acks without
        // touching the acker's replay budget — effectively-once via
        // root-id dedup, zero failed tuples.
        let (t, ops) = ack_topology(60, 2);
        let plan = FaultPlan {
            seed: 11,
            crashes: vec![whale_net::EndpointCrash {
                endpoint: EndpointId(1),
                at_frame: 10,
            }],
            restarts: vec![whale_net::EndpointRestart {
                endpoint: EndpointId(1),
                at_frame: 25,
            }],
            ..FaultPlan::default()
        };
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 2,
                ack: Some(AckConfig {
                    // Long timeout: the log replay must beat the acker to
                    // the recovery, not ride on it.
                    timeout: Duration::from_secs(10),
                    max_replays: 3,
                    drain_deadline: Duration::from_secs(30),
                    eos_redundancy: 2,
                    ..AckConfig::default()
                }),
                fault: Some(plan),
                log: Some(LogConfig::default()),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.tuples_acked + r.tuples_failed, r.spout_emitted);
        assert!(r.fault_crashed_sends > 0, "the crash must reject sends");
        assert_eq!(r.tuples_failed, 0, "log replay must recover every tuple");
        assert_eq!(
            r.tuples_replayed, 0,
            "recovery must come from the log, not the acker's replay budget"
        );
        assert!(r.log_appended_records > 0, "sends must write through the log");
        assert!(r.log_replayed_records > 0, "the restart must trigger a replay");
        assert!(r.log_replayed_bytes > 0);
        // Each of the two sink instances executed each root exactly once
        // even though the replay redelivers pre-crash frames.
        assert_eq!(r.executed[1], 60 * 2);
        let m = r.metrics();
        assert_eq!(
            m.counter("dsps.log.replayed_records"),
            Some(r.log_replayed_records)
        );
        assert_eq!(
            m.counter("dsps.log.appended_records"),
            Some(r.log_appended_records)
        );
    }

    #[test]
    fn acker_watermark_gc_bounds_log_retention() {
        // A clean tracked run with small log segments: acked roots feed
        // the GC watermark, so most of the log is reclaimed before the
        // run reports — retention stays flat instead of growing with the
        // stream.
        let (t, ops) = ack_topology(200, 2);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 2,
                ack: Some(AckConfig {
                    timeout: Duration::from_secs(10),
                    ..AckConfig::default()
                }),
                log: Some(LogConfig {
                    segment_bytes: 256,
                    max_segments: 4096,
                    rack_hops: 0,
                }),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert_eq!(r.tuples_acked, 200);
        assert!(r.log_appended_records > 0);
        assert!(r.log_gcd_bytes > 0, "acked roots must reclaim log bytes");
        assert!(
            r.log_retained_bytes < r.log_appended_bytes,
            "retention must stay below the full stream"
        );
        assert!(r.log_gc_watermark > 0);
        let m = r.metrics();
        assert_eq!(m.counter("dsps.log.gcd_bytes"), Some(r.log_gcd_bytes));
        assert!(m.gauge("dsps.log.retained_bytes").is_some());
        assert!(m.gauge("dsps.log.gc_watermark").is_some());
    }

    #[test]
    fn unlogged_runs_report_zero_log_counters() {
        let (t, ops) = ack_topology(20, 2);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 2,
                ack: Some(AckConfig::default()),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert_eq!(r.log_appended_records, 0);
        assert_eq!(r.log_replayed_records, 0);
        assert_eq!(r.log_retained_bytes, 0);
    }

    #[test]
    fn tracked_tuples_ride_the_relay_tree() {
        // The tracked-bypass is gone: an acked broadcast travels the
        // multicast tree (relay_forwards > 0) and still accounts for
        // every tuple exactly.
        let (t, ops) = ack_topology(150, 16);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 8,
                multicast_d_star: Some(2),
                ack: Some(AckConfig {
                    timeout: Duration::from_secs(10),
                    ..AckConfig::default()
                }),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert!(r.relay_forwards > 0, "tracked broadcasts must relay");
        assert_eq!(r.tuples_acked + r.tuples_failed, r.spout_emitted);
        assert_eq!(r.tuples_acked, 150);
        assert_eq!(r.executed[1], 150 * 16);
        // Observability: the relay/direct byte split is exported.
        assert!(r.relay_bytes > 0);
        let m = r.metrics();
        assert_eq!(m.counter("dsps.relay.bytes"), Some(r.relay_bytes));
        assert!(m.counter("dsps.direct_bytes").is_some());
        assert!(
            r.relay_depths.iter().skip(1).any(|&n| n > 0),
            "d*=2 over 8 workers has relay nodes deeper than the root"
        );
        assert!(!r.relay_forward_ns.is_empty(), "forward latency sampled");
        assert!(m.summary("dsps.relay.forward_ns").is_some());
    }

    #[test]
    fn redundant_eos_is_encoded_once_and_resent() {
        // eos_redundancy grows wire frames, never encodes: the frame is
        // built once and the same buffer is resent.
        let frames_encoded_with = |redundancy: u32| {
            let (t, ops) = ack_topology(50, 4);
            run_topology(
                t,
                ops,
                LiveConfig {
                    machines: 4,
                    ack: Some(AckConfig {
                        timeout: Duration::from_secs(10),
                        eos_redundancy: redundancy,
                        ..AckConfig::default()
                    }),
                    ..LiveConfig::default()
                },
            )
        };
        let one = frames_encoded_with(1);
        let eight = frames_encoded_with(8);
        assert_eq!(one.outcome, RunOutcome::Clean);
        assert_eq!(eight.outcome, RunOutcome::Clean);
        assert_eq!(
            one.frames_encoded, eight.frames_encoded,
            "EOS redundancy must not add encodes"
        );
        assert!(
            eight.fabric_messages > one.fabric_messages,
            "redundant copies do add wire frames"
        );
    }

    #[test]
    fn stale_epoch_relay_frames_are_dropped_not_delivered() {
        let (t, _ops) = counting_topology(2, 4);
        let cluster = ClusterSpec::new(2, 1, 16);
        let placement = Placement::even(&t, &cluster);
        let fabric = Arc::new(whale_net::LiveFabric::new());
        let rx = fabric.register(EndpointId(0)).unwrap();
        let routing = Arc::new(Routing {
            topology: t,
            placement,
            config: LiveConfig {
                machines: 2,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: false,
                multicast_d_star: Some(2),
                ..LiveConfig::default()
            },
            fabric: Arc::clone(&fabric) as Arc<dyn FabricPath>,
            pool: BufferPool::default(),
            shard_inboxes: Vec::new(),
            shards: 1,
            stats: Arc::new(RunStats::default()),
            ack: None,
            relay: Some(RelayState::new(build_relay_epoch(3, 2, 2))),
            log: None,
            tracker: None,
        });
        let r2 = Arc::clone(&routing);
        let h = std::thread::spawn(move || dispatcher_loop(0, rx, &r2));

        let frame = |epoch: u32| {
            let mut f = BytesMut::new();
            f.put_u8(TAG_RELAY);
            RelayHeader {
                origin: 1,
                epoch,
                component: 1,
                tracked: 0,
            }
            .encode_into(&mut f);
            f.to_vec()
        };
        // A frame from a retired generation: stale-dropped, not counted
        // as a malformed frame, never delivered.
        fabric
            .send_copied(EndpointId(1), EndpointId(0), &frame(0))
            .unwrap();
        // A frame on the live generation with a corrupt (empty) item:
        // accepted by the epoch check, dropped at decode.
        fabric
            .send_copied(EndpointId(1), EndpointId(0), &frame(3))
            .unwrap();
        fabric.deregister(EndpointId(0));
        h.join().expect("dispatcher must not panic");
        let relay = routing.relay.as_ref().unwrap();
        assert_eq!(relay.stale_drops.load(Ordering::Relaxed), 1);
        assert_eq!(routing.stats.dropped_frames.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn adaptive_forced_switch_keeps_every_delivery() {
        // Phase-shift the tree mid-run (d* 1 → 4) through the full
        // switch protocol: every broadcast still reaches every instance,
        // nothing lands on a retired generation.
        let mut b = crate::topology::TopologyBuilder::new();
        b.spout("src", 1, Schema::new(vec!["n"]))
            .bolt("fan", 16, Schema::new(vec!["n"]))
            .connect("src", "fan", Grouping::All);
        let t = b.build().unwrap();
        let ops = Operators::new()
            .spout("src", |_| {
                Box::new(IterSpout::new((0..100i64).map(|i| {
                    std::thread::sleep(Duration::from_micros(300));
                    Tuple::with_id(i as u64, vec![Value::I64(i)])
                })))
            })
            .bolt("fan", |_| {
                Box::new(FnBolt::new(|_t: &Tuple, _out: &mut dyn Emitter| {}))
            });
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 8,
                multicast_adaptive: Some(AdaptiveConfig {
                    initial_d: 1,
                    interval: Duration::from_millis(1),
                    forced_switches: vec![(30, 4)],
                    switch_protocol: true,
                    ..AdaptiveConfig::default()
                }),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.executed[1], 100 * 16, "no broadcast lost to the switch");
        assert!(r.relay_switches >= 1, "the forced switch must fire");
        assert!(r.relay_switch_moves > 0, "d* 1→4 moves instances");
        assert_eq!(r.relay_d_star, 4);
        assert!(r.relay_epoch >= 1);
        assert!(r.relay_forwards > 0);
        assert_eq!(r.relay_stale_drops, 0, "drained switch drops nothing");
        assert_eq!(r.outcome, RunOutcome::Clean);
    }

    #[test]
    fn per_link_byte_sums_tile_the_wire_total() {
        // Every fabric send traverses exactly one link, so the per-link
        // accounting must tile the wire byte total exactly — with the
        // rack-aware trees and with Whale's oblivious trees under the
        // same topology (the regression that caught uplink sends being
        // attributed twice). The rack-aware trees must also move
        // strictly fewer bytes over the uplink: machines alternate racks
        // round-robin, so the oblivious tree crosses racks on most
        // edges while the topo tree enters the far rack exactly once.
        let run_with = |topo_trees: bool| {
            let (t, ops) = counting_topology(8, 16);
            run_topology(
                t,
                ops,
                LiveConfig {
                    machines: 8,
                    multicast_adaptive: Some(AdaptiveConfig {
                        initial_d: 2,
                        // No mid-run switches: one deterministic tree.
                        interval: Duration::from_secs(30),
                        topology: Some(TopologyConfig {
                            racks: 2,
                            topo_trees,
                            ..TopologyConfig::default()
                        }),
                        ..AdaptiveConfig::default()
                    }),
                    ..LiveConfig::default()
                },
            )
        };
        let topo = run_with(true);
        let oblivious = run_with(false);
        for r in [&topo, &oblivious] {
            assert_eq!(r.outcome, RunOutcome::Clean);
            assert_eq!(r.executed[1], 100 * 16, "every broadcast lands");
            let linked: u64 = r.link_bytes.iter().map(|(_, b)| b).sum();
            assert_eq!(
                linked,
                r.copied_bytes + r.shared_bytes,
                "per-link sums must tile the wire total exactly"
            );
            assert!(r.uplink_bytes > 0, "cross-rack traffic must register");
            assert!(r.uplink_bytes <= linked);
            let m = r.metrics();
            assert_eq!(m.counter("dsps.links.uplink_bytes"), Some(r.uplink_bytes));
        }
        assert!(
            topo.uplink_bytes < oblivious.uplink_bytes,
            "rack-aware trees must economize the uplink ({} vs {})",
            topo.uplink_bytes,
            oblivious.uplink_bytes
        );
    }

    #[test]
    fn sharded_pipelines_match_single_shard_results() {
        let base = run(CommMode::WorkerOriented, true, 4, 8);
        assert_eq!(base.shards, 1);
        for shards in [2, 4] {
            let (t, ops) = counting_topology(4, 8);
            let r = run_topology(
                t,
                ops,
                LiveConfig {
                    machines: 4,
                    shards,
                    ..LiveConfig::default()
                },
            );
            assert_eq!(r.outcome, RunOutcome::Clean, "{shards} shards");
            assert_eq!(r.executed, base.executed, "{shards} shards");
            assert_eq!(r.spout_emitted, base.spout_emitted);
            assert_eq!(r.shards, shards as u64);
            assert_eq!(r.dropped_frames, 0);
        }
    }

    #[test]
    fn same_worker_cross_shard_traffic_uses_the_inboxes() {
        // One machine, 4 shards: nothing crosses the fabric, but the
        // all-grouped stage spans every shard, so deliveries must flow
        // through the cross-shard inboxes (and be counted).
        let (t, ops) = counting_topology(1, 8);
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 1,
                shards: 4,
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert_eq!(r.executed[1], 800);
        assert_eq!(r.copied_bytes + r.shared_bytes, 0, "single worker");
        assert!(r.cross_shard_msgs > 0, "fan-out must cross shard inboxes");
        let m = r.metrics();
        assert_eq!(m.counter("dsps.cross_shard_msgs"), Some(r.cross_shard_msgs));
        assert_eq!(m.gauge("dsps.shards"), Some(4.0));
    }

    #[test]
    fn tracked_sharded_run_accounts_for_every_tuple() {
        for fabric in [
            FabricKind::PerSend,
            FabricKind::Ring(whale_net::RingConfig::default()),
            FabricKind::OneSided(whale_net::OneSidedConfig::default()),
        ] {
            let (t, ops) = ack_topology(200, 4);
            let r = run_topology(
                t,
                ops,
                LiveConfig {
                    machines: 4,
                    shards: 4,
                    fabric,
                    ack: Some(AckConfig::default()),
                    ..LiveConfig::default()
                },
            );
            assert_eq!(r.outcome, RunOutcome::Clean);
            assert_eq!(r.tuples_acked + r.tuples_failed, r.spout_emitted);
            assert_eq!(r.tuples_acked, 200);
            assert_eq!(r.executed[1], 200 * 4, "exactly once per instance");
        }
    }

    #[test]
    fn background_threads_shut_down_promptly() {
        // Monitor and adaptive intervals far longer than the run: both
        // threads used to sleep the whole interval before noticing the
        // stop flag, stalling teardown by up to a full interval each.
        let (t, ops) = counting_topology(4, 8);
        let started = Instant::now();
        let r = run_topology(
            t,
            ops,
            LiveConfig {
                machines: 4,
                monitor_interval: Some(Duration::from_secs(30)),
                multicast_adaptive: Some(AdaptiveConfig {
                    interval: Duration::from_secs(30),
                    ..AdaptiveConfig::default()
                }),
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.outcome, RunOutcome::Clean);
        assert_eq!(r.spout_emitted, 100);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "shutdown must not wait out 30s sampling intervals (took {:?})",
            started.elapsed()
        );
        let last = r.timeline.last().expect("final sample always lands");
        assert_eq!(last.spout_emitted, 100);
    }
}
