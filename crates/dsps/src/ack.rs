//! Latency tracking: from tuple emission at the source to completion at
//! the sink (the paper's "processing latency") and to last-destination
//! receipt (the "multicast latency").

use std::collections::HashMap;
use whale_sim::{Histogram, SimDuration, SimTime};

/// Tracks in-flight tuples and records completion latencies.
#[derive(Debug, Default)]
pub struct LatencyTracker {
    inflight: HashMap<u64, SimTime>,
    hist: Histogram,
    completed: u64,
    orphans: u64,
}

impl LatencyTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that tuple `id` was emitted at `at`.
    pub fn emitted(&mut self, id: u64, at: SimTime) {
        self.inflight.insert(id, at);
    }

    /// Record completion of tuple `id` at `at`; returns its latency.
    /// Unknown ids (e.g. dropped then retried) count as orphans.
    pub fn completed(&mut self, id: u64, at: SimTime) -> Option<SimDuration> {
        match self.inflight.remove(&id) {
            Some(start) => {
                let lat = at.since(start);
                self.hist.record_duration(lat);
                self.completed += 1;
                Some(lat)
            }
            None => {
                self.orphans += 1;
                None
            }
        }
    }

    /// Discard an in-flight tuple (e.g. dropped at an overflowing queue).
    pub fn dropped(&mut self, id: u64) -> bool {
        self.inflight.remove(&id).is_some()
    }

    /// Tuples still in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Completed tuple count.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Completions for unknown ids.
    pub fn orphan_count(&self) -> u64 {
        self.orphans
    }

    /// Latency distribution of completed tuples.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Mean latency.
    pub fn mean(&self) -> SimDuration {
        self.hist.mean_duration()
    }
}

/// Tracks multicast completion: a tuple is done when **all** destinations
/// have received it (Def. of multicast latency in §3.2).
#[derive(Debug, Default)]
pub struct MulticastTracker {
    inflight: HashMap<u64, (SimTime, u32)>,
    hist: Histogram,
    completed: u64,
}

impl MulticastTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tuple `id` entered the source at `at`, bound for `destinations`.
    pub fn emitted(&mut self, id: u64, at: SimTime, destinations: u32) {
        assert!(destinations > 0);
        self.inflight.insert(id, (at, destinations));
    }

    /// One destination received tuple `id` at `at`. Returns the multicast
    /// latency when this was the last outstanding destination.
    pub fn received(&mut self, id: u64, at: SimTime) -> Option<SimDuration> {
        let entry = self.inflight.get_mut(&id)?;
        entry.1 -= 1;
        if entry.1 == 0 {
            let (start, _) = self.inflight.remove(&id).unwrap();
            let lat = at.since(start);
            self.hist.record_duration(lat);
            self.completed += 1;
            Some(lat)
        } else {
            None
        }
    }

    /// Tuples not yet fully delivered.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Fully delivered tuple count.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Multicast latency distribution.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Mean multicast latency.
    pub fn mean(&self) -> SimDuration {
        self.hist.mean_duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_roundtrip() {
        let mut t = LatencyTracker::new();
        t.emitted(1, SimTime::from_micros(10));
        let lat = t.completed(1, SimTime::from_micros(35)).unwrap();
        assert_eq!(lat, SimDuration::from_micros(25));
        assert_eq!(t.completed_count(), 1);
        assert_eq!(t.inflight(), 0);
    }

    #[test]
    fn orphan_completion_counted() {
        let mut t = LatencyTracker::new();
        assert!(t.completed(99, SimTime::ZERO).is_none());
        assert_eq!(t.orphan_count(), 1);
    }

    #[test]
    fn drop_removes_inflight() {
        let mut t = LatencyTracker::new();
        t.emitted(1, SimTime::ZERO);
        assert!(t.dropped(1));
        assert!(!t.dropped(1));
        assert!(t.completed(1, SimTime::from_micros(5)).is_none());
    }

    #[test]
    fn histogram_accumulates() {
        let mut t = LatencyTracker::new();
        for i in 0..10u64 {
            t.emitted(i, SimTime::ZERO);
            t.completed(i, SimTime::from_micros(100));
        }
        assert_eq!(t.histogram().count(), 10);
        assert_eq!(t.mean(), SimDuration::from_micros(100));
    }

    #[test]
    fn multicast_completes_on_last_destination() {
        let mut m = MulticastTracker::new();
        m.emitted(7, SimTime::ZERO, 3);
        assert!(m.received(7, SimTime::from_micros(10)).is_none());
        assert!(m.received(7, SimTime::from_micros(20)).is_none());
        let lat = m.received(7, SimTime::from_micros(40)).unwrap();
        assert_eq!(lat, SimDuration::from_micros(40));
        assert_eq!(m.completed_count(), 1);
        assert_eq!(m.inflight(), 0);
    }

    #[test]
    fn multicast_unknown_id_ignored() {
        let mut m = MulticastTracker::new();
        assert!(m.received(1, SimTime::ZERO).is_none());
        assert_eq!(m.completed_count(), 0);
    }

    #[test]
    fn multicast_latency_is_last_arrival() {
        let mut m = MulticastTracker::new();
        m.emitted(1, SimTime::from_micros(5), 2);
        m.received(1, SimTime::from_micros(50));
        let lat = m.received(1, SimTime::from_micros(9)).unwrap();
        // Last receipt at t=9 (earlier than the other): since() saturates,
        // latency measured from emit to the *final* received call.
        assert_eq!(lat, SimDuration::from_micros(4));
    }

    #[test]
    #[should_panic]
    fn multicast_zero_destinations_rejected() {
        let mut m = MulticastTracker::new();
        m.emitted(1, SimTime::ZERO, 0);
    }
}
