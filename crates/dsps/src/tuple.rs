//! Tuples: the unit of data flowing through a topology.
//!
//! A tuple is a small ordered list of typed values described by the
//! emitting component's schema, as in Storm. Size accounting matters here:
//! serialization and wire costs in the simulation are driven by
//! [`Tuple::payload_bytes`].

use std::fmt;
use std::sync::Arc;

/// A single typed field value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// UTF-8 string (shared to keep clones cheap).
    Str(Arc<str>),
    /// Raw bytes.
    Bytes(Arc<[u8]>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// A string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Wire size of this value in bytes (1 tag byte + payload).
    pub fn wire_bytes(&self) -> usize {
        1 + match self {
            Value::I64(_) => 8,
            Value::F64(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
            Value::Bool(_) => 1,
        }
    }

    /// As i64, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// As f64, if this is a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// As str, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As bool, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As bytes, if this is a byte array.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A data tuple: ordered values plus a monotonically assigned id used for
/// latency tracking.
#[derive(Clone, PartialEq, Debug)]
pub struct Tuple {
    /// Unique id assigned at the source (0 if untracked).
    pub id: u64,
    /// Field values in schema order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values, untracked.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { id: 0, values }
    }

    /// Build a tracked tuple.
    pub fn with_id(id: u64, values: Vec<Value>) -> Self {
        Tuple { id, values }
    }

    /// Field by index.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Serialized payload size: 8-byte id + 2-byte arity + values.
    pub fn payload_bytes(&self) -> usize {
        8 + 2 + self.values.iter().map(Value::wire_bytes).sum::<usize>()
    }
}

/// A component's declared output fields.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    fields: Vec<String>,
}

impl Schema {
    /// Declare a schema from field names (must be unique).
    pub fn new<S: Into<String>>(fields: Vec<S>) -> Self {
        let fields: Vec<String> = fields.into_iter().map(Into::into).collect();
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].contains(f),
                "duplicate field name {f:?} in schema"
            );
        }
        Schema { fields }
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// Field names in order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("hi").as_i64(), None);
        let b = Value::Bytes(Arc::from(&b"xyz"[..]));
        assert_eq!(b.as_bytes(), Some(&b"xyz"[..]));
    }

    #[test]
    fn wire_bytes_accounting() {
        assert_eq!(Value::I64(1).wire_bytes(), 9);
        assert_eq!(Value::F64(1.0).wire_bytes(), 9);
        assert_eq!(Value::Bool(true).wire_bytes(), 2);
        assert_eq!(Value::str("abc").wire_bytes(), 1 + 4 + 3);
        assert_eq!(Value::Bytes(Arc::from(&b"ab"[..])).wire_bytes(), 1 + 4 + 2);
    }

    #[test]
    fn tuple_payload_bytes() {
        let t = Tuple::new(vec![Value::I64(1), Value::str("xy")]);
        // 8 id + 2 arity + 9 + (1+4+2)
        assert_eq!(t.payload_bytes(), 8 + 2 + 9 + 7);
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn tuple_access() {
        let t = Tuple::with_id(42, vec![Value::I64(7)]);
        assert_eq!(t.id, 42);
        assert_eq!(t.get(0).unwrap().as_i64(), Some(7));
        assert!(t.get(1).is_none());
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec!["driver_id", "lat", "lng"]);
        assert_eq!(s.index_of("lat"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.fields()[0], "driver_id");
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new(vec!["a", "a"]);
    }

    #[test]
    fn str_values_share_storage_on_clone() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
