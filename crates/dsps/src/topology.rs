//! Logical topology: the DAG of spouts, bolts, and stream groupings.
//!
//! Mirrors Storm's `TopologyBuilder`: declare spouts and bolts with a
//! parallelism level, then connect bolts to upstream components with a
//! grouping. Validation rejects cycles, unknown upstreams, and duplicate
//! names at build time.

use crate::task::{ComponentId, TaskId, TaskTable};
use crate::tuple::Schema;
use std::collections::{BTreeMap, HashMap};

/// How an upstream component partitions its stream to a downstream one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Grouping {
    /// Round-robin / random: each tuple to one downstream task.
    Shuffle,
    /// Hash of the key field: same key → same task.
    Fields(usize),
    /// One-to-many: every tuple to **all** downstream tasks (the paper's
    /// subject).
    All,
    /// The emitter names the destination task explicitly.
    Direct,
}

/// Kind of component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComponentKind {
    /// Source of tuples.
    Spout,
    /// Processing operator.
    Bolt,
}

/// A declared component.
#[derive(Clone, Debug)]
pub struct Component {
    /// Dense id.
    pub id: ComponentId,
    /// Unique name.
    pub name: String,
    /// Spout or bolt.
    pub kind: ComponentKind,
    /// Number of tasks.
    pub parallelism: u32,
    /// Declared output fields.
    pub schema: Schema,
}

/// A stream subscription: `to` consumes `from` with `grouping`.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Upstream component.
    pub from: ComponentId,
    /// Downstream component.
    pub to: ComponentId,
    /// Partitioning strategy.
    pub grouping: Grouping,
}

/// Errors detected at build time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// A component name was declared twice.
    DuplicateName(String),
    /// An edge references an unknown component name.
    UnknownComponent(String),
    /// A bolt subscribes to itself or a cycle exists.
    Cycle,
    /// A spout was given an input edge.
    SpoutWithInput(String),
    /// A fields grouping referenced a field index outside the upstream schema.
    BadKeyField {
        /// The offending edge's upstream name.
        from: String,
        /// The requested key index.
        index: usize,
    },
    /// The topology has no spout.
    NoSpout,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateName(n) => write!(f, "duplicate component name {n:?}"),
            TopologyError::UnknownComponent(n) => write!(f, "unknown component {n:?}"),
            TopologyError::Cycle => write!(f, "topology contains a cycle"),
            TopologyError::SpoutWithInput(n) => write!(f, "spout {n:?} cannot have inputs"),
            TopologyError::BadKeyField { from, index } => {
                write!(
                    f,
                    "fields grouping key index {index} out of range for {from:?}"
                )
            }
            TopologyError::NoSpout => write!(f, "topology has no spout"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated topology.
#[derive(Clone, Debug)]
pub struct Topology {
    components: Vec<Component>,
    edges: Vec<Edge>,
    tasks: TaskTable,
    by_name: HashMap<String, ComponentId>,
}

impl Topology {
    /// All components in declaration order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The task table.
    pub fn tasks(&self) -> &TaskTable {
        &self.tasks
    }

    /// Component by name.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.by_name
            .get(name)
            .map(|&id| &self.components[id.0 as usize])
    }

    /// Component by id.
    pub fn component_by_id(&self, id: ComponentId) -> &Component {
        &self.components[id.0 as usize]
    }

    /// Task ids of a component by name.
    pub fn tasks_of(&self, name: &str) -> Vec<TaskId> {
        self.component(name)
            .map(|c| self.tasks.tasks_of(c.id))
            .unwrap_or_default()
    }

    /// Edges out of a component (its downstream subscriptions).
    pub fn downstream_edges(&self, from: ComponentId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.from == from).collect()
    }

    /// Edges into a component.
    pub fn upstream_edges(&self, to: ComponentId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.to == to).collect()
    }

    /// Total task count.
    pub fn total_tasks(&self) -> u32 {
        self.tasks.total_tasks()
    }

    /// Components in a topological order (spouts first).
    pub fn topo_order(&self) -> Vec<ComponentId> {
        let n = self.components.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0 as usize] += 1;
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(i) = ready.pop() {
            order.push(ComponentId(i as u32));
            for e in &self.edges {
                if e.from.0 as usize == i {
                    let j = e.to.0 as usize;
                    indegree[j] -= 1;
                    if indegree[j] == 0 {
                        ready.push(j);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n, "validated topology must be acyclic");
        order
    }
}

/// Builder for [`Topology`].
///
/// ```
/// use whale_dsps::{Grouping, Schema, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// b.spout("requests", 1, Schema::new(vec!["order_id"]))
///     .bolt("matching", 16, Schema::new(vec!["order_id"]))
///     .connect("requests", "matching", Grouping::All); // one-to-many
/// let topology = b.build().unwrap();
/// assert_eq!(topology.tasks_of("matching").len(), 16);
/// ```
#[derive(Default)]
pub struct TopologyBuilder {
    components: Vec<Component>,
    edge_decls: Vec<(String, String, Grouping)>,
    by_name: HashMap<String, ComponentId>,
    error: Option<TopologyError>,
}

impl TopologyBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_component(
        &mut self,
        name: &str,
        kind: ComponentKind,
        parallelism: u32,
        schema: Schema,
    ) -> &mut Self {
        if self.by_name.contains_key(name) {
            self.error
                .get_or_insert(TopologyError::DuplicateName(name.to_string()));
            return self;
        }
        let id = ComponentId(self.components.len() as u32);
        self.by_name.insert(name.to_string(), id);
        self.components.push(Component {
            id,
            name: name.to_string(),
            kind,
            parallelism,
            schema,
        });
        self
    }

    /// Declare a spout.
    pub fn spout(&mut self, name: &str, parallelism: u32, schema: Schema) -> &mut Self {
        self.add_component(name, ComponentKind::Spout, parallelism, schema)
    }

    /// Declare a bolt.
    pub fn bolt(&mut self, name: &str, parallelism: u32, schema: Schema) -> &mut Self {
        self.add_component(name, ComponentKind::Bolt, parallelism, schema)
    }

    /// Subscribe `to` to `from` with `grouping`.
    pub fn connect(&mut self, from: &str, to: &str, grouping: Grouping) -> &mut Self {
        self.edge_decls
            .push((from.to_string(), to.to_string(), grouping));
        self
    }

    /// Validate and build.
    pub fn build(&mut self) -> Result<Topology, TopologyError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if !self
            .components
            .iter()
            .any(|c| c.kind == ComponentKind::Spout)
        {
            return Err(TopologyError::NoSpout);
        }
        let mut edges = Vec::with_capacity(self.edge_decls.len());
        for (from, to, grouping) in &self.edge_decls {
            let &from_id = self
                .by_name
                .get(from)
                .ok_or_else(|| TopologyError::UnknownComponent(from.clone()))?;
            let &to_id = self
                .by_name
                .get(to)
                .ok_or_else(|| TopologyError::UnknownComponent(to.clone()))?;
            let to_comp = &self.components[to_id.0 as usize];
            if to_comp.kind == ComponentKind::Spout {
                return Err(TopologyError::SpoutWithInput(to.clone()));
            }
            if let Grouping::Fields(idx) = grouping {
                let from_comp = &self.components[from_id.0 as usize];
                if *idx >= from_comp.schema.arity() {
                    return Err(TopologyError::BadKeyField {
                        from: from.clone(),
                        index: *idx,
                    });
                }
            }
            edges.push(Edge {
                from: from_id,
                to: to_id,
                grouping: grouping.clone(),
            });
        }
        // Cycle detection: Kahn's algorithm must consume every node.
        let n = self.components.len();
        let mut indegree = vec![0usize; n];
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in &edges {
            indegree[e.to.0 as usize] += 1;
            adj.entry(e.from.0 as usize)
                .or_default()
                .push(e.to.0 as usize);
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = ready.pop() {
            seen += 1;
            for &j in adj.get(&i).into_iter().flatten() {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        if seen != n {
            return Err(TopologyError::Cycle);
        }
        // Allocate task ids in declaration order.
        let mut tasks = TaskTable::new();
        for c in &self.components {
            tasks.allocate(c.id, c.parallelism);
        }
        Ok(Topology {
            components: std::mem::take(&mut self.components),
            edges,
            tasks,
            by_name: std::mem::take(&mut self.by_name),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::new(vec!["k", "v"])
    }

    fn linear() -> Topology {
        let mut b = TopologyBuilder::new();
        b.spout("source", 2, schema2())
            .bolt("match", 4, schema2())
            .bolt("agg", 1, schema2())
            .connect("source", "match", Grouping::All)
            .connect("match", "agg", Grouping::Shuffle);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_allocates_tasks() {
        let t = linear();
        assert_eq!(t.total_tasks(), 7);
        assert_eq!(t.tasks_of("source"), vec![TaskId(0), TaskId(1)]);
        assert_eq!(t.tasks_of("match").len(), 4);
        assert_eq!(t.tasks_of("agg"), vec![TaskId(6)]);
    }

    #[test]
    fn edge_queries() {
        let t = linear();
        let src = t.component("source").unwrap().id;
        let mat = t.component("match").unwrap().id;
        assert_eq!(t.downstream_edges(src).len(), 1);
        assert_eq!(t.upstream_edges(mat).len(), 1);
        assert_eq!(t.downstream_edges(src)[0].grouping, Grouping::All);
    }

    #[test]
    fn topo_order_spouts_first() {
        let t = linear();
        let order = t.topo_order();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], t.component("source").unwrap().id);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = TopologyBuilder::new();
        b.spout("x", 1, schema2()).bolt("x", 1, schema2());
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::DuplicateName("x".into())
        );
    }

    #[test]
    fn unknown_component_rejected() {
        let mut b = TopologyBuilder::new();
        b.spout("s", 1, schema2())
            .bolt("b", 1, schema2())
            .connect("s", "ghost", Grouping::Shuffle);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::UnknownComponent("ghost".into())
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut b = TopologyBuilder::new();
        b.spout("s", 1, schema2())
            .bolt("a", 1, schema2())
            .bolt("b", 1, schema2())
            .connect("s", "a", Grouping::Shuffle)
            .connect("a", "b", Grouping::Shuffle)
            .connect("b", "a", Grouping::Shuffle);
        assert_eq!(b.build().unwrap_err(), TopologyError::Cycle);
    }

    #[test]
    fn spout_input_rejected() {
        let mut b = TopologyBuilder::new();
        b.spout("s", 1, schema2())
            .spout("s2", 1, schema2())
            .connect("s", "s2", Grouping::Shuffle);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::SpoutWithInput("s2".into())
        );
    }

    #[test]
    fn bad_key_field_rejected() {
        let mut b = TopologyBuilder::new();
        b.spout("s", 1, schema2())
            .bolt("b", 1, schema2())
            .connect("s", "b", Grouping::Fields(5));
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::BadKeyField {
                from: "s".into(),
                index: 5
            }
        );
    }

    #[test]
    fn no_spout_rejected() {
        let mut b = TopologyBuilder::new();
        b.bolt("b", 1, schema2());
        assert_eq!(b.build().unwrap_err(), TopologyError::NoSpout);
    }

    #[test]
    fn diamond_topology_is_acyclic() {
        let mut b = TopologyBuilder::new();
        b.spout("s", 1, schema2())
            .bolt("l", 2, schema2())
            .bolt("r", 2, schema2())
            .bolt("join", 1, schema2())
            .connect("s", "l", Grouping::Shuffle)
            .connect("s", "r", Grouping::Shuffle)
            .connect("l", "join", Grouping::All)
            .connect("r", "join", Grouping::All);
        let t = b.build().unwrap();
        assert_eq!(t.edges().len(), 4);
        let join = t.component("join").unwrap().id;
        assert_eq!(t.upstream_edges(join).len(), 2);
    }
}
