//! `BufferPool`: reusable encode buffers for the hot serialization path.
//!
//! Every `encode_*` call used to allocate a fresh `BytesMut`; at high
//! tuple rates that is one heap allocation per frame — exactly the kind
//! of per-message cost the paper's serialize-once design eliminates. The
//! pool keeps released buffers (capacity intact) and hands them back on
//! the next acquire, the codec-layer analogue of the registered
//! memory-region reuse in `whale-net::memory`: registration (allocation)
//! is paid once, then the same region is recycled for every transfer.
//!
//! Buffers are [`PooledBuf`] guards: deref to `BytesMut` for encoding,
//! return to the pool on drop. After warmup the steady state allocates
//! nothing — the hit-rate gauge exported by
//! [`BufferPool::export_metrics`] approaches 1.0.

use bytes::BytesMut;
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use whale_sim::MetricsRegistry;

/// Sizing policy of a [`BufferPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Most released buffers kept for reuse; releases beyond it free the
    /// buffer instead (bounds idle memory).
    pub max_pooled: usize,
    /// Capacity new buffers are allocated with on a pool miss.
    pub initial_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_pooled: 256,
            initial_capacity: 1024,
        }
    }
}

struct PoolInner {
    config: PoolConfig,
    free: Mutex<Vec<BytesMut>>,
    hits: AtomicU64,
    misses: AtomicU64,
    released: AtomicU64,
    discarded: AtomicU64,
    /// Buffers currently acquired and not yet returned.
    outstanding: AtomicU64,
    /// Most buffers ever outstanding at once.
    high_watermark: AtomicU64,
    /// Wire-buffer snapshots taken via [`PooledBuf::share`].
    shares: AtomicU64,
    /// Bytes copied out of scratch buffers by those snapshots.
    shared_bytes: AtomicU64,
}

/// A shared pool of encode buffers. Cloning shares the same pool.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(PoolConfig::default())
    }
}

impl BufferPool {
    /// New empty pool.
    pub fn new(config: PoolConfig) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                config,
                free: Mutex::new(Vec::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                released: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
                high_watermark: AtomicU64::new(0),
                shares: AtomicU64::new(0),
                shared_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> PoolConfig {
        self.inner.config
    }

    /// Take a cleared buffer from the pool (hit) or allocate one (miss).
    /// The buffer returns to the pool when the guard drops.
    pub fn acquire(&self) -> PooledBuf {
        let reused = self.inner.free.lock().pop();
        let buf = match reused {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                BytesMut::with_capacity(self.inner.config.initial_capacity)
            }
        };
        let out = self.inner.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.high_watermark.fetch_max(out, Ordering::Relaxed);
        PooledBuf {
            buf: Some(buf),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Pool hits (acquires served from a released buffer) so far.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Pool misses (acquires that allocated) so far.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Buffers returned to the pool so far.
    pub fn released(&self) -> u64 {
        self.inner.released.load(Ordering::Relaxed)
    }

    /// Buffers freed instead of pooled because the pool was full.
    pub fn discarded(&self) -> u64 {
        self.inner.discarded.load(Ordering::Relaxed)
    }

    /// Buffers currently acquired and not yet returned.
    pub fn outstanding(&self) -> u64 {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// Most buffers ever outstanding at once.
    pub fn high_watermark(&self) -> u64 {
        self.inner.high_watermark.load(Ordering::Relaxed)
    }

    /// Wire-buffer snapshots taken via [`PooledBuf::share`]. On the
    /// zero-copy path this is one per *encoded* frame regardless of
    /// fan-out — relay forwarding clones the snapshot by reference — so
    /// `shares ≈ frames_encoded` confirms the serialize-once discipline.
    pub fn shares(&self) -> u64 {
        self.inner.shares.load(Ordering::Relaxed)
    }

    /// Bytes copied out of scratch buffers by [`PooledBuf::share`] (the
    /// one physical copy a zero-copy frame ever pays).
    pub fn shared_bytes(&self) -> u64 {
        self.inner.shared_bytes.load(Ordering::Relaxed)
    }

    /// Released buffers currently available for reuse.
    pub fn pooled(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Hits over total acquires (0 before the first acquire). Approaches
    /// 1.0 once the working set is warm — the steady state allocates
    /// nothing.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Export pool counters into `reg` under `prefix.*`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.hits"), self.hits());
        reg.set_counter(&format!("{prefix}.misses"), self.misses());
        reg.set_counter(&format!("{prefix}.released"), self.released());
        reg.set_counter(&format!("{prefix}.discarded"), self.discarded());
        reg.set_gauge(&format!("{prefix}.outstanding"), self.outstanding() as f64);
        reg.set_gauge(
            &format!("{prefix}.high_watermark"),
            self.high_watermark() as f64,
        );
        reg.set_gauge(&format!("{prefix}.pooled"), self.pooled() as f64);
        reg.set_gauge(&format!("{prefix}.hit_rate"), self.hit_rate());
        reg.set_counter(&format!("{prefix}.shares"), self.shares());
        reg.set_counter(&format!("{prefix}.shared_bytes"), self.shared_bytes());
    }
}

/// An acquired pool buffer. Dereferences to `BytesMut` for encoding and
/// returns to the pool (cleared, capacity kept) when dropped.
pub struct PooledBuf {
    buf: Option<BytesMut>,
    pool: Arc<PoolInner>,
}

impl PooledBuf {
    /// Copy the encoded contents into a freshly shared wire buffer (the
    /// transfer the fabric posts by reference); the scratch buffer itself
    /// stays with the guard and returns to the pool.
    pub fn share(&self) -> Arc<[u8]> {
        self.pool.shares.fetch_add(1, Ordering::Relaxed);
        self.pool
            .shared_bytes
            .fetch_add(self.len() as u64, Ordering::Relaxed);
        Arc::from(&self[..])
    }
}

impl Deref for PooledBuf {
    type Target = BytesMut;
    fn deref(&self) -> &BytesMut {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut BytesMut {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let mut buf = self.buf.take().expect("dropped once");
        self.pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        buf.clear();
        let mut free = self.pool.free.lock();
        if free.len() < self.pool.config.max_pooled {
            free.push(buf);
            self.pool.released.fetch_add(1, Ordering::Relaxed);
        } else {
            self.pool.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn buffers_returned_after_use_are_reused() {
        let pool = BufferPool::default();
        {
            let mut a = pool.acquire();
            a.put_slice(b"warmup frame");
        } // drop returns it
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.pooled(), 1);
        for _ in 0..10 {
            let mut b = pool.acquire();
            assert!(b.is_empty(), "buffers come back cleared");
            b.put_slice(b"steady state");
        }
        assert_eq!(pool.misses(), 1, "steady state allocates nothing");
        assert_eq!(pool.hits(), 10);
        assert!(pool.hit_rate() > 0.9);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn high_watermark_tracks_concurrent_outstanding() {
        let pool = BufferPool::default();
        let a = pool.acquire();
        let b = pool.acquire();
        let c = pool.acquire();
        assert_eq!(pool.outstanding(), 3);
        drop((a, b, c));
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.high_watermark(), 3);
        // Watermark is a high-water mark, not a gauge.
        let _d = pool.acquire();
        assert_eq!(pool.high_watermark(), 3);
    }

    #[test]
    fn pool_bounds_idle_buffers() {
        let pool = BufferPool::new(PoolConfig {
            max_pooled: 2,
            initial_capacity: 16,
        });
        let all: Vec<_> = (0..5).map(|_| pool.acquire()).collect();
        drop(all);
        assert_eq!(pool.pooled(), 2, "releases beyond max_pooled are freed");
        assert_eq!(pool.released(), 2);
        assert_eq!(pool.discarded(), 3);
    }

    #[test]
    fn share_snapshots_contents_and_keeps_buffer_pooled() {
        let pool = BufferPool::default();
        let shared = {
            let mut b = pool.acquire();
            b.put_slice(b"frame");
            b.share()
        };
        assert_eq!(&shared[..], b"frame");
        assert_eq!(pool.pooled(), 1, "scratch buffer returned despite share");
        let another = Arc::clone(&shared);
        assert_eq!(&another[..], b"frame", "shared wire buffer outlives guard");
        assert_eq!(pool.shares(), 1, "one snapshot per encoded frame");
        assert_eq!(pool.shared_bytes(), 5);
    }

    #[test]
    fn shares_count_snapshots_not_reference_clones() {
        let pool = BufferPool::default();
        let mut b = pool.acquire();
        b.put_slice(b"relayed frame");
        let wire = b.share();
        // Relay fan-out hands the same snapshot to every child by
        // reference; only the snapshot itself is a share.
        let _children: Vec<_> = (0..4).map(|_| Arc::clone(&wire)).collect();
        assert_eq!(pool.shares(), 1);
        assert_eq!(pool.shared_bytes(), 13);
    }

    #[test]
    fn export_metrics_snapshot() {
        let pool = BufferPool::default();
        drop(pool.acquire());
        drop(pool.acquire());
        let mut reg = MetricsRegistry::new();
        pool.export_metrics(&mut reg, "pool");
        assert_eq!(reg.counter("pool.misses"), Some(1));
        assert_eq!(reg.counter("pool.hits"), Some(1));
        assert_eq!(reg.counter("pool.released"), Some(2));
        assert_eq!(reg.gauge("pool.outstanding"), Some(0.0));
        assert_eq!(reg.gauge("pool.high_watermark"), Some(1.0));
        assert!((reg.gauge("pool.hit_rate").unwrap() - 0.5).abs() < 1e-12);
    }
}
