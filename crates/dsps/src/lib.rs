//! # whale-dsps — a Storm-like distributed stream processing substrate
//!
//! Whale is a modification of Apache Storm's messaging layer, so the
//! reproduction needs the Storm it modifies. This crate provides it from
//! scratch: typed tuples and schemas, a hand-written wire codec with the
//! two message formats of Fig 9 (instance-oriented `InstanceMessage` vs
//! worker-oriented `WorkerMessage`/`BatchTuple`), topology building with
//! shuffle/fields/all groupings, Storm-style task allocation and even
//! scheduling onto workers and machines, communication planning with
//! serialization/traffic accounting, latency trackers, and a live
//! multi-threaded runtime that executes topologies end-to-end over the
//! in-process fabric.

#![warn(missing_docs)]

pub mod ack;
pub mod acker;
pub mod codec;
pub mod grouping;
pub mod messaging;
pub mod operator;
pub mod pool;
pub mod runtime;
pub mod scheduler;
pub mod task;
pub mod topology;
pub mod tuple;

pub use ack::{LatencyTracker, MulticastTracker};
pub use acker::{AckBuilder, Acker, TreeState};
pub use codec::{
    AddressedTuple, DecodeError, InstanceMessage, InstanceMessageView, LazyTuple,
    LengthPrefixedCodec, RelayHeader, TupleView, ValueView, WhaleCodec, WireCodec, WorkerMessage,
    WorkerMessageView,
};
pub use grouping::{hash_value, hash_value_view, GroupingExec, RouteError};
pub use messaging::{plan, CommMode, Envelope, MessagePlan};
pub use operator::{
    Bolt, BoltFactory, Emitter, FnBolt, IterSpout, LazyFnBolt, Spout, SpoutFactory, VecEmitter,
};
pub use pool::{BufferPool, PoolConfig, PooledBuf};
pub use runtime::{
    run_topology, AckConfig, AdaptiveConfig, BuildError, LiveConfig, Operators, RunOutcome,
    RunReport, TimelineSample,
};
pub use whale_net::{FabricKind, LogConfig, RingConfig};
pub use scheduler::{Placement, WorkerId};
pub use task::{ComponentId, TaskId, TaskTable};
pub use topology::{
    Component, ComponentKind, Edge, Grouping, Topology, TopologyBuilder, TopologyError,
};
pub use tuple::{Schema, Tuple, Value};
