//! Property tests for crash recovery through the partition log: for any
//! crash frame and restart gap, a tracked run with [`LiveConfig::log`]
//! enabled must deliver the emitted set exactly once per sink instance —
//! the crashed endpoint's slice is replayed from the log after the
//! restart (never from the acker's replay budget), root-id dedup absorbs
//! the overlap, and nothing is silently lost — across the per-send,
//! ring, and one-sided transports at 1 and 4 pipeline shards.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig, LogConfig,
    Operators, Schema, Tuple, TopologyBuilder, Value,
};
use whale_net::{
    EndpointCrash, EndpointId, EndpointRestart, FabricKind, FaultPlan, OneSidedConfig, RingConfig,
};

const TUPLES: i64 = 60;
const FANOUT: u32 = 2;

/// Every transport variant the property must hold on.
fn fabric_kinds() -> Vec<(&'static str, FabricKind)> {
    vec![
        ("per_send", FabricKind::PerSend),
        ("ring", FabricKind::Ring(RingConfig::default())),
        (
            "one_sided",
            FabricKind::OneSided(OneSidedConfig {
                ring_slots: 64,
                ..OneSidedConfig::default()
            }),
        ),
    ]
}

/// Run one tracked, logged topology with a crash-then-restart plan and
/// return `(report, per-value execution counts unioned over sinks)`.
fn run_recovery(
    kind: FabricKind,
    shards: u32,
    plan: FaultPlan,
) -> (whale_dsps::RunReport, HashMap<i64, u64>) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", FANOUT, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().unwrap();

    let seen: Arc<Mutex<HashMap<i64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink_seen = Arc::clone(&seen);
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new(
                (0..TUPLES).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        })
        .bolt("sink", move |_| {
            let seen = Arc::clone(&sink_seen);
            Box::new(FnBolt::new(move |t: &Tuple, _out: &mut dyn Emitter| {
                if let Some(Value::I64(v)) = t.get(0) {
                    *seen.lock().unwrap().entry(*v).or_insert(0) += 1;
                }
            }))
        });

    let report = run_topology(
        t,
        ops,
        LiveConfig {
            machines: 3,
            shards,
            fabric: kind,
            ack: Some(AckConfig {
                // Long timeout: recovery must come from the log replay,
                // not from acker-timeout replays racing it.
                timeout: Duration::from_secs(10),
                max_replays: 3,
                drain_deadline: Duration::from_secs(30),
                eos_redundancy: 4,
                ..AckConfig::default()
            }),
            fault: Some(plan),
            log: Some(LogConfig::default()),
            run_deadline: Some(Duration::from_secs(20)),
            ..LiveConfig::default()
        },
    );
    let counts = std::mem::take(&mut *seen.lock().unwrap());
    (report, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Replayed-from-log ∪ live delivery equals the emitted set exactly
    /// once per sink instance: wherever the crash lands and however long
    /// the outage window is, every tuple acks without spending the
    /// acker's replay budget and without a duplicate surviving dedup.
    #[test]
    fn log_replay_recovers_the_emitted_set_exactly_once(
        crash_at in 3u64..20,
        gap in 1u64..15,
        crashed_worker in 1u32..3,
        shard_pick in 0u32..4,
    ) {
        for shards in [1u32, 4] {
            for (label, kind) in fabric_kinds() {
                // Flat endpoint = worker * shards + shard; workers 1 and
                // 2 receive every emission remotely, so the restart
                // threshold (< 35 addressed frames) is always crossed.
                let endpoint = EndpointId(crashed_worker * shards + shard_pick % shards);
                let plan = FaultPlan {
                    seed: 7,
                    crashes: vec![EndpointCrash { endpoint, at_frame: crash_at }],
                    restarts: vec![EndpointRestart { endpoint, at_frame: crash_at + gap }],
                    ..FaultPlan::default()
                };
                let (r, counts) = run_recovery(kind, shards, plan);

                prop_assert_eq!(r.spout_emitted, TUPLES as u64, "{}/{}", label, shards);
                prop_assert_eq!(
                    r.tuples_acked + r.tuples_failed, r.spout_emitted,
                    "{}/{}: silent loss (acked {} + failed {} != emitted {})",
                    label, shards, r.tuples_acked, r.tuples_failed, r.spout_emitted
                );
                prop_assert_eq!(
                    r.tuples_failed, 0,
                    "{}/{}: log replay must recover every crashed-window tuple", label, shards
                );
                prop_assert_eq!(
                    r.tuples_replayed, 0,
                    "{}/{}: recovery must not spend the acker's replay budget", label, shards
                );
                prop_assert_eq!(r.thread_panics, 0, "{}/{}", label, shards);
                prop_assert!(
                    r.log_appended_records > 0,
                    "{}/{}: sends must write through the log", label, shards
                );
                if r.fault_crashed_sends > 0 {
                    // The crash bit a data frame, so recovery must have
                    // come from the log.
                    prop_assert!(
                        r.log_replayed_records > 0,
                        "{}/{}: rejected sends but no log replay", label, shards
                    );
                }

                // The dedup'd execution multiset: exactly the emitted
                // values, each executed once per sink instance.
                prop_assert_eq!(
                    counts.len() as i64, TUPLES,
                    "{}/{}: value set mismatch", label, shards
                );
                for v in 0..TUPLES {
                    let n = counts.get(&v).copied().unwrap_or(0);
                    prop_assert_eq!(
                        n, FANOUT as u64,
                        "{}/{}: value {} executed {} times, want {}",
                        label, shards, v, n, FANOUT
                    );
                }
            }
        }
    }
}
