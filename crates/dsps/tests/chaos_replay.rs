//! Property tests for at-least-once delivery under injected faults: for
//! any seeded [`FaultPlan`] with a drop rate below 1.0, the sink-side
//! dedup'd delivery must equal the emitted set — every spout tuple
//! executed exactly once per sink instance, no silent loss, no
//! duplicate execution surviving the root-id dedup — across the
//! per-send transport and the ring transport at 1/2/4 flusher shards.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig, Operators, Schema,
    Tuple, TopologyBuilder, Value,
};
use whale_net::{FabricKind, FaultPlan, OneSidedConfig, RingConfig};

const TUPLES: i64 = 60;
const FANOUT: u32 = 2;

/// Every transport variant the property must hold on.
fn fabric_kinds() -> Vec<(&'static str, FabricKind)> {
    let ring = |shards: usize| {
        FabricKind::Ring(RingConfig {
            flusher_shards: shards,
            ..RingConfig::default()
        })
    };
    vec![
        ("per_send", FabricKind::PerSend),
        ("ring/1", ring(1)),
        ("ring/2", ring(2)),
        ("ring/4", ring(4)),
        (
            "one_sided",
            FabricKind::OneSided(OneSidedConfig {
                ring_slots: 64,
                ..OneSidedConfig::default()
            }),
        ),
    ]
}

/// Run one tracked topology under the given fault plan and return
/// `(report, per-value execution counts unioned over sink instances)`.
fn run_chaos(
    kind: FabricKind,
    plan: FaultPlan,
) -> (whale_dsps::RunReport, HashMap<i64, u64>) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", FANOUT, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().unwrap();

    let seen: Arc<Mutex<HashMap<i64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink_seen = Arc::clone(&seen);
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new(
                (0..TUPLES).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        })
        .bolt("sink", move |_| {
            let seen = Arc::clone(&sink_seen);
            Box::new(FnBolt::new(move |t: &Tuple, _out: &mut dyn Emitter| {
                if let Some(Value::I64(v)) = t.get(0) {
                    *seen.lock().unwrap().entry(*v).or_insert(0) += 1;
                }
            }))
        });

    let report = run_topology(
        t,
        ops,
        LiveConfig {
            machines: 3,
            fabric: kind,
            ack: Some(AckConfig {
                timeout: Duration::from_millis(25),
                max_replays: 20,
                drain_deadline: Duration::from_secs(20),
                eos_redundancy: 4,
                ..AckConfig::default()
            }),
            fault: Some(plan),
            run_deadline: Some(Duration::from_secs(10)),
            ..LiveConfig::default()
        },
    );
    let counts = std::mem::take(&mut *seen.lock().unwrap());
    (report, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Dedup'd delivery equals the emitted set: with a recoverable drop
    /// rate and a sufficient replay budget, every emitted tuple is
    /// acked, executed exactly once by each of the `FANOUT` sink
    /// instances, and nothing else is executed.
    #[test]
    fn dedup_delivery_equals_emitted_set(
        seed in 0u64..u64::MAX,
        drop_pct in 0u32..31,
    ) {
        for (label, kind) in fabric_kinds() {
            let plan = FaultPlan::uniform_drops(seed, drop_pct as f64 / 100.0);
            let (r, counts) = run_chaos(kind, plan);

            prop_assert_eq!(r.spout_emitted, TUPLES as u64, "{}", label);
            prop_assert_eq!(
                r.tuples_acked + r.tuples_failed, r.spout_emitted,
                "{}: silent loss (acked {} + failed {} != emitted {})",
                label, r.tuples_acked, r.tuples_failed, r.spout_emitted
            );
            // 20 replays at ≤30% drop make residual failure chance
            // ~0.3^21 per destination — a failed tuple here means the
            // replay machinery is broken, not bad luck.
            prop_assert_eq!(r.tuples_failed, 0, "{}: replay budget exhausted", label);
            prop_assert_eq!(r.thread_panics, 0, "{}", label);
            if drop_pct > 0 {
                // The sweep's whole point: faults were actually injected.
                prop_assert!(
                    r.fault_drops > 0 || r.fault_duplicates > 0,
                    "{}: plan injected nothing at drop={}%", label, drop_pct
                );
            }

            // The dedup'd execution multiset: exactly the emitted values,
            // each executed once per sink instance.
            prop_assert_eq!(counts.len() as i64, TUPLES, "{}: value set mismatch", label);
            for v in 0..TUPLES {
                let n = counts.get(&v).copied().unwrap_or(0);
                prop_assert_eq!(
                    n, FANOUT as u64,
                    "{}: value {} executed {} times, want {}", label, v, n, FANOUT
                );
            }
        }
    }
}
