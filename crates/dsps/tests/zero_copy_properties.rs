//! Property tests for the zero-copy fan-out path: encoding a frame once
//! into a pooled buffer and sharing it by reference must deliver bytes
//! identical to a fresh per-destination encode, for every tuple arity
//! and fan-out.

use proptest::prelude::*;
use std::sync::Arc;
use whale_dsps::codec;
use whale_dsps::{BufferPool, InstanceMessage, TaskId, Tuple, Value, WorkerMessage};
use whale_net::{EndpointId, LiveFabric};

/// Build a deterministic tuple of `arity` values from a generated seed.
/// Cycles through every `Value` variant so the codec's full tag range is
/// exercised.
fn tuple_from(arity: usize, seed: u64) -> Tuple {
    let values = (0..arity)
        .map(|i| {
            let x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            match i % 5 {
                0 => Value::I64(x as i64),
                1 => Value::F64((x % 1_000) as f64 / 7.0),
                2 => Value::Str(Arc::from(format!("v{x}").as_str())),
                3 => Value::Bytes(Arc::from(x.to_le_bytes().as_slice())),
                _ => Value::Bool(x.is_multiple_of(2)),
            }
        })
        .collect();
    Tuple::new(values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shared_worker_frame_matches_per_destination_encode(
        arity in 0usize..8,
        fanout in 1u32..33,
        seed in 0u64..u64::MAX,
    ) {
        let tuple = tuple_from(arity, seed);
        let src = TaskId(7);
        let dst_ids: Vec<TaskId> = (0..fanout).map(TaskId).collect();

        // Shared path: serialize the data item once into a pooled
        // scratch buffer, then build the frame from the shared item.
        let pool = BufferPool::default();
        let mut item = pool.acquire();
        codec::encode_tuple_into(&mut item, &tuple);
        let mut framed = pool.acquire();
        WorkerMessage::encode_with_item_into(src, &dst_ids, &item, &mut framed);
        let wire = framed.share();

        // Per-destination path: a fresh clone-and-encode of the message.
        let fresh = WorkerMessage { src, dst_ids: dst_ids.clone(), tuple: tuple.clone() }.encode();
        prop_assert_eq!(&wire[..], &fresh[..], "arity {} fanout {}", arity, fanout);

        // Fan the one shared buffer out over a live fabric: every
        // destination must receive exactly those bytes.
        let fabric = LiveFabric::new();
        let receivers: Vec<_> = (0..fanout)
            .map(|d| fabric.register(EndpointId(d)).unwrap())
            .collect();
        for d in 0..fanout {
            fabric
                .send_shared(EndpointId(100), EndpointId(d), Arc::clone(&wire))
                .unwrap();
        }
        for rx in &receivers {
            let msg = rx.try_recv().unwrap();
            prop_assert_eq!(msg.payload.bytes(), &fresh[..]);
        }
    }

    #[test]
    fn instance_parts_encode_matches_owned_encode(
        arity in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let tuple = tuple_from(arity, seed);
        let pool = BufferPool::default();
        let mut buf = pool.acquire();
        InstanceMessage::encode_parts_into(TaskId(1), TaskId(2), &tuple, &mut buf);
        let owned = InstanceMessage { src: TaskId(1), dst: TaskId(2), tuple }.encode();
        prop_assert_eq!(&buf[..], &owned[..]);
    }

    #[test]
    fn pooled_reencode_is_stable_across_reuse(
        arity in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        // Encoding through a recycled pool buffer must never leak bytes
        // from a previous frame.
        let tuple = tuple_from(arity, seed);
        let pool = BufferPool::default();
        let first = {
            let mut b = pool.acquire();
            codec::encode_tuple_into(&mut b, &tuple);
            b.share()
        };
        let second = {
            let mut b = pool.acquire();
            codec::encode_tuple_into(&mut b, &tuple);
            b.share()
        };
        prop_assert_eq!(&first[..], &second[..]);
        prop_assert!(pool.hits() >= 1, "second acquire must reuse the buffer");
    }
}
