//! Property tests for the relay data plane: routing all-grouped
//! broadcasts through a worker-level multicast tree — at any out-degree,
//! across worker counts, with injected drops and a mid-run epoch switch
//! — must be observationally equivalent to the source sending to every
//! worker directly. The executor-side root-id dedup makes the check
//! sharp: every emitted value executes exactly once per sink instance,
//! so a frame delivered twice (e.g. on a retired epoch *and* via its
//! replay on the new tree) would surface as a count > FANOUT.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use whale_dsps::{
    run_topology, AckConfig, AdaptiveConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig,
    Operators, RunReport, Schema, Tuple, TopologyBuilder, Value,
};
use whale_net::FaultPlan;

const TUPLES: i64 = 50;
const FANOUT: u32 = 4;

/// Relay out-degrees the equivalence must hold at.
const DEGREES: [u32; 3] = [1, 2, 4];

/// Run one tracked all-grouped topology and return `(report, per-value
/// execution counts unioned over sink instances)`.
fn run_cell(
    machines: u32,
    d_star: Option<u32>,
    adaptive: Option<AdaptiveConfig>,
    plan: Option<FaultPlan>,
) -> (RunReport, HashMap<i64, u64>) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("sink", FANOUT, Schema::new(vec!["n"]))
        .connect("src", "sink", Grouping::All);
    let t = b.build().unwrap();

    let seen: Arc<Mutex<HashMap<i64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink_seen = Arc::clone(&seen);
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new(
                (0..TUPLES).map(|i| Tuple::with_id(i as u64, vec![Value::I64(i)])),
            ))
        })
        .bolt("sink", move |_| {
            let seen = Arc::clone(&sink_seen);
            Box::new(FnBolt::new(move |t: &Tuple, _out: &mut dyn Emitter| {
                if let Some(Value::I64(v)) = t.get(0) {
                    *seen.lock().unwrap().entry(*v).or_insert(0) += 1;
                }
            }))
        });

    let report = run_topology(
        t,
        ops,
        LiveConfig {
            machines,
            multicast_d_star: d_star,
            multicast_adaptive: adaptive,
            ack: Some(AckConfig {
                timeout: Duration::from_millis(40),
                // A replay round at ≤20% drops reaches all FANOUT
                // first-hop subscribers with p ≈ 0.41, so 40 rounds put
                // residual failure odds near 1e-9 per tuple: a failed
                // tuple means broken machinery, not bad luck.
                max_replays: 40,
                drain_deadline: Duration::from_secs(20),
                // Redundant EOS copies survive lossy multi-hop trees.
                eos_redundancy: 8,
                ..AckConfig::default()
            }),
            fault: plan,
            run_deadline: Some(Duration::from_secs(10)),
            ..LiveConfig::default()
        },
    );
    let counts = std::mem::take(&mut *seen.lock().unwrap());
    (report, counts)
}

/// The dedup'd execution multiset must be exactly the emitted set,
/// executed once per sink instance — the shared oracle for every cell.
fn assert_exact_delivery(label: &str, r: &RunReport, counts: &HashMap<i64, u64>) {
    assert_eq!(r.spout_emitted, TUPLES as u64, "{label}: spout must finish");
    assert_eq!(
        r.tuples_acked + r.tuples_failed,
        r.spout_emitted,
        "{label}: silent loss"
    );
    assert_eq!(r.tuples_failed, 0, "{label}: replay budget exhausted");
    assert_eq!(r.thread_panics, 0, "{label}: no thread may panic");
    assert_eq!(counts.len() as i64, TUPLES, "{label}: value set mismatch");
    for v in 0..TUPLES {
        let n = counts.get(&v).copied().unwrap_or(0);
        assert_eq!(
            n, FANOUT as u64,
            "{label}: value {v} executed {n} times, want {FANOUT}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Relay ≡ direct: at any out-degree and worker count, with drops
    /// injected, the relay tree delivers exactly the multiset the direct
    /// source-to-every-worker plan delivers.
    #[test]
    fn relay_delivery_equals_direct_delivery(
        seed in 0u64..u64::MAX,
        drop_pct in 0u32..21,
        machines in 3u32..8,
        d_idx in 0usize..DEGREES.len(),
    ) {
        let d = DEGREES[d_idx];
        let plan = |salt: u64| {
            (drop_pct > 0)
                .then(|| FaultPlan::uniform_drops(seed ^ salt, drop_pct as f64 / 100.0))
        };
        let (direct_r, direct_counts) = run_cell(machines, None, None, plan(0));
        assert_exact_delivery("direct", &direct_r, &direct_counts);
        prop_assert_eq!(direct_r.relay_forwards, 0, "direct plan never relays");

        let label = format!("relay d={d} m={machines} drop={drop_pct}%");
        let (relay_r, relay_counts) = run_cell(machines, Some(d), None, plan(1));
        assert_exact_delivery(&label, &relay_r, &relay_counts);
        prop_assert_eq!(&relay_counts, &direct_counts, "{}: delivery differs", label);
        // A tree wider than the worker set degenerates to the direct
        // star; otherwise some relay node must have forwarded.
        if machines - 1 > d {
            prop_assert!(relay_r.relay_forwards > 0, "{}: tree unused", label);
        }
    }

    /// A mid-run epoch switch under injected drops loses nothing and
    /// never double-delivers: frames caught on the old generation drain
    /// or are dropped as stale and replayed on the new tree, and the
    /// root-id dedup keeps every (instance, value) count at exactly one.
    #[test]
    fn epoch_switch_under_drops_keeps_exact_delivery(
        seed in 0u64..u64::MAX,
        drop_pct in 0u32..21,
        machines in 4u32..8,
        from_idx in 0usize..DEGREES.len(),
        to_idx in 0usize..DEGREES.len(),
    ) {
        let adaptive = AdaptiveConfig {
            initial_d: DEGREES[from_idx],
            interval: Duration::from_millis(1),
            forced_switches: vec![(TUPLES as u64 / 2, DEGREES[to_idx])],
            ..AdaptiveConfig::default()
        };
        let plan = (drop_pct > 0)
            .then(|| FaultPlan::uniform_drops(seed, drop_pct as f64 / 100.0));
        let label = format!(
            "switch d={}→{} m={machines} drop={drop_pct}%",
            DEGREES[from_idx], DEGREES[to_idx]
        );
        let (r, counts) = run_cell(machines, None, Some(adaptive), plan);
        assert_exact_delivery(&label, &r, &counts);
        if DEGREES[from_idx] != DEGREES[to_idx] {
            prop_assert!(r.relay_switches >= 1, "{}: switch must land", label);
            prop_assert!(r.relay_epoch >= 1, "{}: epoch must advance", label);
        }
    }
}
