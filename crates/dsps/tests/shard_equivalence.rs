//! Property tests for shard-owned pipelines: splitting each worker's
//! tasks across N pipeline threads must be invisible to the data plane.
//! For any tuple set, sharded delivery (shards ∈ {2, 4}) must equal
//! single-dispatcher delivery (shards = 1) — the same dedup'd
//! execution multiset, exactly once per instance, across all three
//! transports (per_send, ring, one_sided).

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use whale_dsps::{
    run_topology, AckConfig, Emitter, FnBolt, Grouping, IterSpout, LiveConfig, Operators,
    RunOutcome, Schema, Tuple, TopologyBuilder, Value,
};
use whale_net::{FabricKind, OneSidedConfig, RingConfig};

const TUPLES: i64 = 40;
const MID_FANOUT: u32 = 4;
const SINK_FANOUT: u32 = 2;

/// Every transport variant the property must hold on.
fn fabric_kinds() -> Vec<(&'static str, FabricKind)> {
    vec![
        ("per_send", FabricKind::PerSend),
        ("ring", FabricKind::Ring(RingConfig::default())),
        (
            "one_sided",
            FabricKind::OneSided(OneSidedConfig {
                ring_slots: 64,
                ..OneSidedConfig::default()
            }),
        ),
    ]
}

/// Run src → mid (fields-grouped) → sink (all-grouped) on `shards`
/// pipelines per worker, returning the per-value execution counts at
/// the mid and sink stages. Fields grouping exercises cross-shard hash
/// routing; the all-grouped stage exercises one-to-many fan-out.
fn run_sharded(
    kind: FabricKind,
    shards: u32,
    machines: u32,
    base: i64,
    tracked: bool,
) -> (
    whale_dsps::RunReport,
    HashMap<i64, u64>,
    HashMap<i64, u64>,
) {
    let mut b = TopologyBuilder::new();
    b.spout("src", 1, Schema::new(vec!["n"]))
        .bolt("mid", MID_FANOUT, Schema::new(vec!["n"]))
        .bolt("sink", SINK_FANOUT, Schema::new(vec!["n"]))
        .connect("src", "mid", Grouping::Fields(0))
        .connect("mid", "sink", Grouping::All);
    let t = b.build().unwrap();

    let mid_seen: Arc<Mutex<HashMap<i64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink_seen: Arc<Mutex<HashMap<i64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let mid_tap = Arc::clone(&mid_seen);
    let sink_tap = Arc::clone(&sink_seen);
    let ops = Operators::new()
        .spout("src", move |_| {
            Box::new(IterSpout::new((0..TUPLES).map(move |i| {
                Tuple::with_id(i as u64, vec![Value::I64(base + i)])
            })))
        })
        .bolt("mid", move |_| {
            let seen = Arc::clone(&mid_tap);
            Box::new(FnBolt::new(move |t: &Tuple, out: &mut dyn Emitter| {
                if let Some(Value::I64(v)) = t.get(0) {
                    *seen.lock().unwrap().entry(*v).or_insert(0) += 1;
                    out.emit(Tuple::new(vec![Value::I64(*v)]));
                }
            }))
        })
        .bolt("sink", move |_| {
            let seen = Arc::clone(&sink_tap);
            Box::new(FnBolt::new(move |t: &Tuple, _out: &mut dyn Emitter| {
                if let Some(Value::I64(v)) = t.get(0) {
                    *seen.lock().unwrap().entry(*v).or_insert(0) += 1;
                }
            }))
        });

    let report = run_topology(
        t,
        ops,
        LiveConfig {
            machines,
            shards,
            fabric: kind,
            ack: tracked.then(AckConfig::default),
            ..LiveConfig::default()
        },
    );
    let mid = std::mem::take(&mut *mid_seen.lock().unwrap());
    let sink = std::mem::take(&mut *sink_seen.lock().unwrap());
    (report, mid, sink)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shard-routed delivery ≡ single-dispatcher delivery: identical
    /// per-value execution multisets at every stage, exactly once per
    /// instance, for every (shards, fabric) combination.
    #[test]
    fn sharded_delivery_equals_single_dispatcher(
        base in -1_000_000i64..1_000_000,
        machines in 1u32..4,
        tracked in any::<bool>(),
    ) {
        for (label, kind) in fabric_kinds() {
            let (r1, mid1, sink1) =
                run_sharded(kind, 1, machines, base, tracked);
            prop_assert_eq!(r1.outcome, RunOutcome::Clean, "{}/1", label);
            prop_assert_eq!(mid1.len() as i64, TUPLES, "{}/1 mid set", label);
            for shards in [2u32, 4] {
                let (r, mid, sink) =
                    run_sharded(kind, shards, machines, base, tracked);
                prop_assert_eq!(r.outcome, RunOutcome::Clean, "{}/{}", label, shards);
                prop_assert_eq!(r.shards, shards as u64, "{}/{}", label, shards);
                prop_assert_eq!(
                    r.spout_emitted, r1.spout_emitted,
                    "{}/{}", label, shards
                );
                prop_assert_eq!(
                    &mid, &mid1,
                    "{}/{} mid delivery diverged from single-dispatcher", label, shards
                );
                prop_assert_eq!(
                    &sink, &sink1,
                    "{}/{} sink delivery diverged from single-dispatcher", label, shards
                );
                if tracked {
                    prop_assert_eq!(
                        r.tuples_acked + r.tuples_failed, r.spout_emitted,
                        "{}/{} silent loss", label, shards
                    );
                    prop_assert_eq!(r.tuples_failed, 0, "{}/{}", label, shards);
                }
            }
            // Exactly once per instance, at both stages: each value hits
            // its one fields-grouped mid task once, then every sink.
            for v in base..base + TUPLES {
                prop_assert_eq!(mid1.get(&v).copied(), Some(1), "{} mid {}", label, v);
                prop_assert_eq!(
                    sink1.get(&v).copied(), Some(SINK_FANOUT as u64),
                    "{} sink {}", label, v
                );
            }
        }
    }
}
