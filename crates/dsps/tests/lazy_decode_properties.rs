//! Property tests for the lazy decode layer: a [`TupleView`] borrowed
//! from the wire buffer must agree with the eager decoder on every
//! field, for every value type, arity, and message framing — and
//! adversarial buffers (truncations, corrupt tags, invalid UTF-8) must
//! surface `DecodeError`, never a panic or an over-read.

use proptest::prelude::*;
use std::sync::Arc;
use whale_dsps::codec::{self, decode_tuple, encode_tuple};
use whale_dsps::{
    DecodeError, InstanceMessage, InstanceMessageView, LazyTuple, LengthPrefixedCodec, TaskId,
    Tuple, TupleView, Value, WhaleCodec, WireCodec, WorkerMessage, WorkerMessageView,
};

/// Strategy over every `Value` variant, including arbitrary (valid)
/// UTF-8 strings and arbitrary byte blobs.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        any::<f64>().prop_map(Value::F64),
        ".{0,40}".prop_map(|s| Value::Str(Arc::from(s.as_str()))),
        proptest::collection::vec(any::<u8>(), 0..40)
            .prop_map(|b| Value::Bytes(Arc::from(b.as_slice()))),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Arbitrary tuples; arity range crosses the inline offset-table size
/// (16) so the spill path is exercised too.
fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (
        any::<u64>(),
        proptest::collection::vec(value_strategy(), 0..24),
    )
        .prop_map(|(id, values)| Tuple::with_id(id, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// View-based field access is observationally identical to the eager
    /// decoder: same id, arity, values, and wire length.
    #[test]
    fn view_agrees_with_eager_decode(tuple in tuple_strategy()) {
        let bytes = encode_tuple(&tuple);
        let eager = decode_tuple(&mut &bytes[..]).unwrap();
        let view = TupleView::parse(&bytes).unwrap();

        prop_assert_eq!(view.id(), eager.id);
        prop_assert_eq!(view.arity(), eager.arity());
        prop_assert_eq!(view.wire_len(), bytes.len());
        for i in 0..view.arity() {
            let from_view = view.field(i).unwrap().unwrap();
            // Compare through the hash (canonicalizes NaN / -0.0) and
            // through a re-encode of the materialized value.
            prop_assert_eq!(
                whale_dsps::hash_value_view(&from_view),
                whale_dsps::hash_value(eager.get(i).unwrap()),
            );
            prop_assert_eq!(
                encode_tuple(&Tuple::new(vec![from_view.to_owned()]))[..],
                encode_tuple(&Tuple::new(vec![eager.get(i).unwrap().clone()]))[..],
            );
        }
        prop_assert!(view.field(view.arity()).is_none());
        // Full materialization roundtrips to the identical wire bytes.
        let owned = view.to_tuple().unwrap();
        prop_assert_eq!(encode_tuple(&owned)[..], bytes[..]);
    }

    /// A `LazyTuple` anchored to a shared receive buffer reads the same
    /// values lazily and after memoized materialization.
    #[test]
    fn lazy_tuple_agrees_with_eager_decode(tuple in tuple_strategy()) {
        let bytes = encode_tuple(&tuple);
        let buf: Arc<[u8]> = Arc::from(&bytes[..]);
        let lazy = LazyTuple::from_wire(Arc::clone(&buf), 0).unwrap();
        prop_assert!(lazy.is_wire());
        prop_assert_eq!(lazy.id(), tuple.id);
        prop_assert_eq!(lazy.arity(), tuple.arity());
        for i in 0..tuple.arity() {
            let v = lazy.field(i).unwrap().unwrap();
            prop_assert_eq!(
                whale_dsps::hash_value_view(&v),
                whale_dsps::hash_value(tuple.get(i).unwrap()),
            );
        }
        prop_assert!(!lazy.is_materialized(), "field reads must not materialize");
        let materialized = lazy.materialize().unwrap();
        prop_assert_eq!(encode_tuple(materialized)[..], bytes[..]);
    }

    /// Worker- and instance-oriented framing: the message views expose
    /// the same routing metadata and tuple as the owned decoders.
    #[test]
    fn message_views_agree_with_owned_decode(
        tuple in tuple_strategy(),
        src in 0u32..1000,
        dsts in proptest::collection::vec(0u32..1000, 1..24),
    ) {
        let dst_ids: Vec<TaskId> = dsts.iter().copied().map(TaskId).collect();
        let wm = WorkerMessage { src: TaskId(src), dst_ids: dst_ids.clone(), tuple: tuple.clone() };
        let bytes = wm.encode();
        let view = WorkerMessageView::parse(&bytes).unwrap();
        prop_assert_eq!(view.src(), TaskId(src));
        prop_assert_eq!(view.dst_len(), dst_ids.len());
        prop_assert_eq!(view.dst_ids().collect::<Vec<_>>(), dst_ids.clone());
        let owned = view.to_owned().unwrap();
        prop_assert_eq!(owned.encode()[..], bytes[..]);
        // The no-alloc dispatcher fans out to the same destinations.
        let mut scratch = vec![TaskId(999_999)];
        codec::dispatch_worker_message_into(&view, &mut scratch);
        let eager_dsts: Vec<TaskId> = codec::dispatch_worker_message(owned)
            .into_iter()
            .map(|a| a.dst)
            .collect();
        prop_assert_eq!(scratch, eager_dsts);

        let im = InstanceMessage { src: TaskId(src), dst: TaskId(src + 1), tuple };
        let bytes = im.encode();
        let view = InstanceMessageView::parse(&bytes).unwrap();
        prop_assert_eq!(view.src(), TaskId(src));
        prop_assert_eq!(view.dst(), TaskId(src + 1));
        prop_assert_eq!(view.to_owned().unwrap().encode()[..], bytes[..]);
    }

    /// Every strict prefix of a valid encoding fails cleanly: framing
    /// validation must bounds-check every length before trusting it.
    #[test]
    fn truncations_error_and_never_panic(tuple in tuple_strategy()) {
        let bytes = encode_tuple(&tuple);
        for cut in 0..bytes.len() {
            prop_assert!(
                TupleView::parse(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not parse",
                bytes.len(),
            );
        }
        let wm = WorkerMessage {
            src: TaskId(1),
            dst_ids: vec![TaskId(2), TaskId(3)],
            tuple: tuple.clone(),
        }
        .encode();
        for cut in 0..wm.len() {
            prop_assert!(WorkerMessageView::parse(&wm[..cut]).is_err());
        }
        let im = InstanceMessage { src: TaskId(1), dst: TaskId(2), tuple }.encode();
        for cut in 0..im.len() {
            prop_assert!(InstanceMessageView::parse(&im[..cut]).is_err());
        }
    }

    /// Arbitrary single-byte corruption anywhere in the buffer: parse
    /// plus a full field walk plus materialization either succeeds or
    /// returns `DecodeError` — it never panics and never reads out of
    /// bounds (an over-read would abort the test as a slice panic).
    #[test]
    fn corrupted_bytes_never_panic(
        tuple in tuple_strategy(),
        pos_seed in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let bytes = encode_tuple(&tuple);
        let mut corrupt = bytes.to_vec();
        let pos = pos_seed % corrupt.len();
        corrupt[pos] = byte;
        if let Ok(view) = TupleView::parse(&corrupt) {
            for i in 0..view.arity() {
                let _ = view.field(i);
            }
            let _ = view.to_tuple();
        }
    }

    /// Arbitrary garbage buffers (not derived from any encoding) are
    /// handled just as safely.
    #[test]
    fn garbage_buffers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(view) = TupleView::parse(&data) {
            let _ = view.to_tuple();
        }
        if let Ok(view) = WorkerMessageView::parse(&data) {
            let _ = view.to_owned();
        }
        if let Ok(view) = InstanceMessageView::parse(&data) {
            let _ = view.to_owned();
        }
    }

    /// Both codec implementations roundtrip any tuple, and the
    /// length-prefixed format is exactly 4 bytes heavier.
    #[test]
    fn wire_codecs_roundtrip(tuple in tuple_strategy()) {
        for c in [&WhaleCodec as &dyn WireCodec, &LengthPrefixedCodec as &dyn WireCodec] {
            let bytes = c.encode_tuple(&tuple);
            let (decoded, consumed) = c.decode_tuple(&bytes).unwrap();
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(encode_tuple(&decoded)[..], encode_tuple(&tuple)[..]);
            let view = c.tuple_view(&bytes).unwrap();
            prop_assert_eq!(view.arity(), tuple.arity());
            prop_assert_eq!(encode_tuple(&view.to_tuple().unwrap())[..], encode_tuple(&tuple)[..]);
        }
        let plain = WhaleCodec.encode_tuple(&tuple);
        let prefixed = LengthPrefixedCodec.encode_tuple(&tuple);
        prop_assert_eq!(prefixed.len(), plain.len() + 4);
    }
}

/// Invalid UTF-8 is deferred past framing validation and surfaces as
/// `DecodeError::BadUtf8` exactly at the access that touches the string
/// — sibling fields stay readable.
#[test]
fn bad_utf8_is_deferred_to_the_touching_access() {
    let tuple = Tuple::new(vec![Value::str("corrupt-me"), Value::I64(7)]);
    let mut bytes = encode_tuple(&tuple).to_vec();
    // Layout: 8B id | 2B arity | tag | 4B len | payload...
    assert_eq!(bytes[10], 3, "first value must be a string");
    bytes[15] = 0xFF; // 0xFF can never appear in valid UTF-8
    let view = TupleView::parse(&bytes).expect("framing is intact");
    assert_eq!(view.field(0), Some(Err(DecodeError::BadUtf8)));
    assert_eq!(view.field(1).unwrap().unwrap().as_i64(), Some(7));
    assert!(view.to_tuple().is_err());
    let lazy = LazyTuple::from_wire(Arc::from(&bytes[..]), 0).unwrap();
    assert!(lazy.materialize().is_err());
}
