//! # whale — a from-scratch Rust reproduction of *Whale: Efficient
//! One-to-Many Data Partitioning in RDMA-Assisted Distributed Stream
//! Processing Systems* (SC '21)
//!
//! The paper's contribution is a pair of techniques that remove the
//! upstream CPU bottleneck of one-to-many (all-grouping) stream
//! partitioning:
//!
//! 1. an **RDMA-assisted stream multicast** over a *self-adjusting
//!    non-blocking tree* whose maximum out-degree `d*` is derived from an
//!    M/D/1 model of the source's transfer queue, and
//! 2. **worker-oriented communication**, replacing Storm's
//!    instance-oriented messaging: one serialization and one message per
//!    destination *worker* instead of per destination *instance*.
//!
//! This crate re-exports the whole system:
//!
//! - [`sim`]: deterministic discrete-event substrate + calibrated cost model
//! - [`net`]: RDMA/TCP fabric emulation (verbs, ring memory region, MMS/WTL
//!   batching, cluster topology, live in-process fabric)
//! - [`dsps`]: the Storm-like substrate (tuples, codec, topologies,
//!   groupings, scheduler, live multi-threaded runtime)
//! - [`multicast`]: the core contribution (Algorithm 1, baselines,
//!   capability analysis, controller, dynamic switching)
//! - [`workloads`]: synthetic Didi/NASDAQ generators + rate plans
//! - [`apps`]: the two evaluation applications
//! - [`core`]: the experiment engine running the five systems of §5.1
//!
//! ## Quickstart
//!
//! ```
//! use whale::core::{run, EngineConfig, SystemMode};
//!
//! // Compare Storm vs Whale at parallelism 480 on the simulated
//! // 30-node cluster.
//! let storm = run(EngineConfig::paper(SystemMode::Storm, 480, 20));
//! let whale = run(EngineConfig::paper(SystemMode::WhaleFull, 480, 20));
//! assert!(whale.throughput > 10.0 * storm.throughput);
//! ```

/// The commonly used items in one import: `use whale::prelude::*;`.
pub mod prelude {
    pub use whale_core::{
        run, sweep_grid, AppProfile, Drive, EngineConfig, EngineReport, SystemMode,
    };
    pub use whale_dsps::{
        run_topology, Bolt, CommMode, Emitter, FabricKind, Grouping, LiveConfig, Operators,
        RunOutcome, Schema, Spout, Topology, TopologyBuilder, Tuple, Value,
    };
    pub use whale_multicast::{
        build_binomial, build_nonblocking, build_sequential, recommend, MulticastTree, Node,
        Structure,
    };
    pub use whale_sim::{CostModel, SimDuration, SimTime};
    pub use whale_workloads::{DidiConfig, NasdaqConfig, RatePlan};
}

pub use whale_apps as apps;
pub use whale_core as core;
pub use whale_dsps as dsps;
pub use whale_multicast as multicast;
pub use whale_net as net;
pub use whale_sim as sim;
pub use whale_workloads as workloads;
