//! Trace export and replay: write the synthetic Didi workload to CSV (the
//! stand-in for the paper's published Dataset artifact), read it back, and
//! run the ride-hailing topology from the replayed records instead of the
//! live generator — byte-identical results from a portable file.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_replay
//! ```

use std::io::BufReader;
use whale::apps::ride_hailing;
use whale::dsps::{run_topology, CommMode, FabricKind, IterSpout, LiveConfig, Operators, Tuple, Value};
use whale::workloads::trace;
use whale::workloads::DidiConfig;

fn main() {
    let seed = 2024;
    let config = DidiConfig::default();
    let locations = 5_000u64;
    let requests = 500u64;

    // 1. Export both streams to CSV (in-memory here; write to disk with a
    //    File in real use).
    let mut loc_csv = Vec::new();
    trace::export_locations(&mut loc_csv, seed, config, locations).unwrap();
    let mut ord_csv = Vec::new();
    trace::export_orders(&mut ord_csv, seed + 5_000, config, requests).unwrap();
    println!(
        "exported traces: locations {} bytes, orders {} bytes",
        loc_csv.len(),
        ord_csv.len()
    );

    // 2. Replay: parse the CSVs back into records...
    let locs = trace::import_locations(BufReader::new(&loc_csv[..])).unwrap();
    let ords = trace::import_orders(BufReader::new(&ord_csv[..])).unwrap();
    println!(
        "replayed {} locations and {} orders",
        locs.len(),
        ords.len()
    );

    // 3. ...and feed them to the topology through iterator spouts with the
    //    same event schema the generator spouts produce.
    let loc_tuples: Vec<Tuple> = locs
        .iter()
        .enumerate()
        .map(|(i, l)| {
            Tuple::with_id(
                i as u64 + 1,
                vec![
                    Value::I64(0), // location tag
                    Value::I64(l.driver_id as i64),
                    Value::F64(l.lat),
                    Value::F64(l.lng),
                    Value::I64(l.ts),
                ],
            )
        })
        .collect();
    let ord_tuples: Vec<Tuple> = ords
        .iter()
        .map(|o| {
            Tuple::with_id(
                1_000_000_000 + o.order_id,
                vec![
                    Value::I64(1), // request tag
                    Value::I64(o.order_id as i64),
                    Value::F64(o.lat),
                    Value::F64(o.lng),
                    Value::I64(o.ts),
                ],
            )
        })
        .collect();

    let operators = Operators::new()
        .spout("locations", move |_| {
            Box::new(IterSpout::new(loc_tuples.clone().into_iter()))
        })
        .spout("requests", move |_| {
            Box::new(IterSpout::new(ord_tuples.clone().into_iter()))
        })
        .bolt("matching", |_| Box::new(ride_hailing::MatchingBolt::new()))
        .bolt("aggregation", |_| {
            Box::new(ride_hailing::AggregationBolt::new())
        });

    let parallelism = 16;
    let report = run_topology(
        ride_hailing::topology(parallelism),
        operators,
        LiveConfig {
            machines: 4,
            comm_mode: CommMode::WorkerOriented,
            zero_copy: true,
            multicast_d_star: Some(2),
            dedicated_senders: true,
            fabric: FabricKind::PerSend,
            ..LiveConfig::default()
        },
    );

    println!(
        "\nreplayed run: matching executed {} tuples ({} locations + {} requests x {} instances)",
        report.executed[2], locations, requests, parallelism
    );
    assert_eq!(
        report.executed[2],
        locations + requests * parallelism as u64
    );
    println!(
        "aggregation received {} candidates; wall time {:?}",
        report.executed[3], report.elapsed
    );
    println!(
        "\nThe same CSV replays identically on any machine — the trace is the experiment input."
    );
}
