//! A guided tour of the core contribution: build the paper's Fig 6 tree,
//! relay a tuple through it (Fig 6's time-unit walkthrough), derive `d*`
//! from the M/D/1 model, and run the full dynamic-switching protocol
//! (StatusMessage → ControlMessages → ACKs) between a coordinator and
//! per-instance agents.
//!
//! Run with:
//! ```text
//! cargo run --release --example multicast_tree_tour
//! ```

use whale::multicast::{
    build_binomial, build_nonblocking, build_sequential, capability, AckOutcome, InstanceAgent,
    Node, ProtocolMsg, RelaySim, SwitchCoordinator,
};
use whale::sim::cost::mdone;
use whale::sim::{SimDuration, SimTime};

fn main() {
    println!("== the paper's Fig 6: |T| = 7, d* = 2 ==\n");
    let tree = build_nonblocking(7, 2);
    println!("{}", tree.render_ascii());

    let schedule = RelaySim::new(tree.clone()).multicast(0);
    println!("tuple t1 enters S at unit 0; arrival time units per destination:");
    for (i, a) in schedule.arrivals.iter().enumerate() {
        println!("  T{i}: unit {a}");
    }
    println!(
        "multicast completes at unit {} (the paper: \"in the fourth time unit ... \
         Whale completes the multicast of t1\")\n",
        schedule.complete
    );

    println!("== structures over 480 destinations ==\n");
    for (name, tree) in [
        ("sequential (Storm)", build_sequential(480)),
        ("binomial (RDMC)", build_binomial(480)),
        ("non-blocking d*=3", build_nonblocking(480, 3)),
    ] {
        let s = RelaySim::new(tree.clone()).multicast(0);
        println!(
            "  {name:<20} source out-degree {:>3}, source busy {:>3} units/tuple, completion unit {:>3}",
            tree.out_degree(Node::Source),
            s.source_done,
            s.complete
        );
    }

    println!("\n== L(t): multicast capability (Eqs 6-7) ==\n");
    print!("  t:      ");
    (1..=8u32).for_each(|t| print!("{t:>7}"));
    println!();
    for d in [1u32, 2, 3, 30] {
        print!("  d*={d:<3}  ");
        (1..=8u32).for_each(|t| print!("{:>7}", capability(d, t)));
        println!();
    }

    println!("\n== d* from the M/D/1 transfer-queue model (corrected Eq. 3) ==\n");
    let t_e = 8.4e-6;
    let q = 2_048;
    for lambda in [5_000.0, 10_000.0, 20_000.0, 40_000.0, 80_000.0] {
        let d = mdone::d_star(lambda, t_e, q);
        let m = mdone::max_affordable_rate(d, t_e, q);
        println!("  lambda = {lambda:>7.0}/s  ->  d* = {d:<3} (affords up to {m:>8.0}/s)",);
    }

    println!("\n== structure advisor (whale::multicast::analysis) ==\n");
    let (t_e, q) = (8.4e-6, 2_048);
    for lambda in [2_000.0, 30_000.0, 90_000.0] {
        let choice = whale::multicast::recommend(480, lambda, t_e, q);
        println!("  lambda = {lambda:>7.0}/s over 480 instances -> {choice:?}");
    }

    println!("\n== dynamic switching protocol: d* 3 -> 2 over 15 instances ==\n");
    let tree = build_nonblocking(15, 3);
    let mut agents: Vec<InstanceAgent> = (0..15)
        .map(|i| InstanceAgent::new(Node::Dest(i), tree.clone()))
        .collect();
    let (mut coord, outbox) = SwitchCoordinator::start(SimTime::ZERO, &tree, 2);
    println!("plan: {} connection moves", coord.plan().len());
    for m in &coord.plan().moves {
        println!(
            "  {} disconnects from {:?} and connects to {}",
            m.node,
            m.disconnect_from.map(|p| p.to_string()),
            m.connect_to
        );
    }
    let mut t = SimTime::ZERO;
    let mut delivered = 0;
    for (dst, msg) in outbox {
        let Node::Dest(i) = dst else { continue };
        delivered += 1;
        if let Some(ProtocolMsg::Ack { from }) = agents[i as usize].on_message(msg) {
            t += SimDuration::from_micros(12);
            if let AckOutcome::Completed { t_switch } = coord.on_ack(from, t) {
                println!("\nall ACKs received; T_switch = {t_switch}");
            }
        }
    }
    for (dst, msg) in coord.deferred_notifications() {
        let Node::Dest(i) = dst else { continue };
        agents[i as usize].on_message(msg);
    }
    println!("{delivered} protocol messages delivered; final structure:\n");
    println!("{}", coord.new_tree().render_ascii());
    assert!(agents.iter().all(|a| a.replica() == coord.new_tree()));
    println!("every instance agent's replica matches the coordinator's tree.");
}
