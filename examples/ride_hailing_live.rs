//! The on-demand ride-hailing application (Fig 4) on the *live* runtime:
//! real threads, real serialization, real message passing through the
//! in-process fabric — comparing Storm-style instance-oriented messaging
//! against Whale's worker-oriented communication.
//!
//! Run with:
//! ```text
//! cargo run --release --example ride_hailing_live
//! ```

use whale::apps::ride_hailing;
use whale::dsps::{run_topology, CommMode, FabricKind, LiveConfig};
use whale::workloads::DidiConfig;

fn main() {
    let matching_parallelism = 32;
    let machines = 8;
    let locations = 20_000;
    let requests = 2_000;

    println!(
        "ride-hailing: {locations} driver locations (key-grouped) + {requests} requests \
         (broadcast to {matching_parallelism} matching instances) on {machines} machines\n"
    );

    for (name, comm, zero_copy, d_star) in [
        (
            "instance-oriented (Storm)",
            CommMode::InstanceOriented,
            false,
            None,
        ),
        (
            "worker-oriented (Whale-WOC)",
            CommMode::WorkerOriented,
            true,
            None,
        ),
        (
            "worker-oriented + multicast tree d*=2 (Whale)",
            CommMode::WorkerOriented,
            true,
            Some(2),
        ),
    ] {
        let topology = ride_hailing::topology(matching_parallelism);
        let operators = ride_hailing::operators(7, DidiConfig::default(), locations, requests);
        let report = run_topology(
            topology,
            operators,
            LiveConfig {
                machines,
                comm_mode: comm,
                zero_copy,
                multicast_d_star: d_star,
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
        println!("{name}:");
        println!("  wall time          {:?}", report.elapsed);
        println!("  serializations     {}", report.serializations);
        println!("  fabric messages    {}", report.fabric_messages);
        println!("  relay forwards     {}", report.relay_forwards);
        println!(
            "  delivery latency   mean {:?} / p99 {:?} ({} samples)",
            report.mean_delivery(),
            report.p99_delivery(),
            report.delivery_ns.len()
        );
        println!(
            "  bytes moved        {} copied + {} shared",
            report.copied_bytes, report.shared_bytes
        );
        println!(
            "  matching executed  {} tuples, aggregation: {}\n",
            report.executed[2], report.executed[3]
        );
    }

    println!(
        "Worker-oriented communication serializes the broadcast data item once per tuple\n\
         and sends one message per worker; instance-oriented pays both per instance.\n\
         With the multicast tree, the source sends each broadcast to only d* workers\n\
         and the other workers relay — the remaining frames show up as relay forwards."
    );
}
