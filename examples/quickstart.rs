//! Quickstart: reproduce the paper's headline result in one run.
//!
//! Compares the five systems of §5.1 (Storm, RDMA-based Storm, Whale-WOC,
//! Whale-WOC-RDMA, full Whale) at parallelism 480 on the simulated
//! 30-node cluster and prints throughput, latency, and traffic.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use whale::core::{run, EngineConfig, SystemMode};

fn main() {
    let parallelism = 480;
    let tuples = 300;

    println!("One-to-many data partitioning, parallelism = {parallelism}, 30 machines");
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>16}",
        "system", "tuples/s", "mean latency", "multicast lat", "bytes per 10k"
    );

    let mut storm_tput = 0.0;
    for mode in SystemMode::ALL {
        let report = run(EngineConfig::paper(mode, parallelism, tuples));
        if mode == SystemMode::Storm {
            storm_tput = report.throughput;
        }
        println!(
            "{:<16} {:>12.1} {:>14} {:>14} {:>16}",
            mode.label(),
            report.throughput,
            format!("{}", report.mean_latency),
            format!("{}", report.mean_multicast_latency),
            report.traffic_per_10k
        );
        if mode == SystemMode::WhaleFull {
            println!(
                "\nWhale vs Storm: {:.1}x throughput (paper: 56.6x), latency -{:.1}%  (paper: -96.6%)",
                report.throughput / storm_tput,
                100.0 * (1.0 - report.mean_latency.as_secs_f64() / storm_latency_secs())
            );
        }
    }
}

/// Storm's latency at the same operating point, for the summary line.
fn storm_latency_secs() -> f64 {
    run(EngineConfig::paper(SystemMode::Storm, 480, 300))
        .mean_latency
        .as_secs_f64()
}
