//! The self-adjusting non-blocking multicast tree under a dynamic stream:
//! the Figs 23–24 scenario. The input rate steps up and back down; the
//! workload monitor watches the transfer queue and the controller
//! re-derives `d*` from the M/D/1 model, reorganizing the tree with
//! negative scale-down / active scale-up.
//!
//! The paper drives 30k–100k tuples/s on real InfiniBand hardware; the
//! simulated source tops out lower, so the scenario here uses rates that
//! straddle the simulated capacity knee the same way (see EXPERIMENTS.md).
//!
//! Run with:
//! ```text
//! cargo run --release --example dynamic_multicast
//! ```

use whale::core::{run, AppProfile, Drive, EngineConfig, SystemMode};
use whale::sim::{SimDuration, SimTime};
use whale::workloads::RatePlan;

fn main() {
    let mut cfg = EngineConfig::paper(SystemMode::WhaleFull, 480, 0);
    cfg.app = AppProfile::lightweight();
    // Small control tuples; cheap dispatch — this experiment isolates the
    // multicast path.
    cfg.tuple_bytes = 64;
    cfg.cost.id_pack = SimDuration::from_nanos(10);
    cfg.cost.deser_fixed = SimDuration::from_micros(5);
    cfg.cost.deser_per_byte_ns = 30;
    cfg.cost.dispatch = SimDuration::from_nanos(500);
    cfg.initial_d_star = 5;
    cfg.inflight_window = 4_096;
    cfg.record_series = true;
    cfg.drive = Drive::Rate {
        plan: RatePlan::Steps(vec![
            (SimTime::ZERO, 10_000.0),
            (SimTime::from_secs(4), 20_000.0),
            (SimTime::from_secs(8), 30_000.0),
            (SimTime::from_secs(12), 40_000.0),
            (SimTime::from_secs(16), 12_000.0),
        ]),
        horizon: SimTime::from_secs(20),
    };

    println!("dynamic stream: 10k -> 20k -> 30k -> 40k -> 12k tuples/s (steps every 4s)\n");
    let report = run(cfg);

    println!(
        "completed {} tuples, dropped {}",
        report.completed, report.dropped
    );
    println!(
        "mean latency {}, p99 {}",
        report.mean_latency, report.p99_latency
    );
    println!("\ndynamic switches (time, new d*, switch delay):");
    for (at, d, delay) in &report.switches {
        println!("  t={at:<12} d*={d:<3} delay={delay}");
    }

    println!("\nthroughput over time (1s windows):");
    for (t, v) in report.throughput_series.points() {
        println!("  t={:<12} {v:>10.0} tuples/s", format!("{t}"));
    }

    println!(
        "\nThe controller shrinks d* as the rate rises (negative scale-down keeps the\n\
         transfer queue from blocking) and grows it again when the queue drains\n\
         (active scale-up minimizes multicast latency) — §3.3 of the paper."
    );
}
