//! The stock exchange application on the live runtime: split →
//! key-grouped sells / broadcast buys → order matching → trading-volume
//! aggregation, over synthetic NASDAQ-style records.
//!
//! Run with:
//! ```text
//! cargo run --release --example stock_exchange_live
//! ```

use whale::apps::stock_exchange;
use whale::dsps::{run_topology, CommMode, FabricKind, LiveConfig};
use whale::workloads::NasdaqConfig;

fn main() {
    let matching_parallelism = 16;
    let machines = 4;
    let records = 50_000;

    println!(
        "stock exchange: {records} records over {} symbols, matching parallelism {matching_parallelism}\n",
        NasdaqConfig::default().symbols
    );

    let topology = stock_exchange::topology(matching_parallelism);
    let operators = stock_exchange::operators(33, NasdaqConfig::default(), records);
    let report = run_topology(
        topology,
        operators,
        LiveConfig {
            machines,
            comm_mode: CommMode::WorkerOriented,
            zero_copy: true,
            // Relay broadcast buys through the non-blocking tree (d* = 2).
            multicast_d_star: Some(2),
            dedicated_senders: false,
            fabric: FabricKind::PerSend,
            ..LiveConfig::default()
        },
    );

    println!("pipeline counts:");
    println!("  source emitted       {}", report.spout_emitted);
    println!("  split (sell side)    {}", report.executed[1]);
    println!("  split (buy side)     {}", report.executed[2]);
    println!("  matching executions  {}", report.executed[3]);
    println!("  trades aggregated    {}", report.executed[4]);
    println!("  wall time            {:?}", report.elapsed);
    println!("  serializations       {}", report.serializations);
    println!(
        "\nBuy orders are broadcast to all {matching_parallelism} matching instances (all \
         grouping);\nsell orders are key-grouped by symbol, so each symbol's book lives on one instance."
    );
}
