//! Offline-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free signatures:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std lock
//! (a panic while held) is recovered rather than propagated, matching
//! parking_lot's no-poisoning behaviour.

use std::sync;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in an rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poison, the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
