//! Offline-compatible subset of the `criterion` benchmark API.
//!
//! Implements the handful of entry points the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! benchmark groups with [`BenchmarkId`] parameters, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — as a plain timing
//! loop: a short warm-up, then a fixed measurement window whose mean
//! per-iteration time is printed. No statistics, plotting, or HTML output.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. This subset runs one setup per
/// routine call regardless of variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh un-timed `setup` value per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass: also calibrates how many iterations fit the window.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter_ns = warm.elapsed.as_nanos().max(1) as u64;
    // Aim for ~100ms of measurement, bounded to keep bench runs short.
    let iters = (100_000_000 / per_iter_ns).clamp(1, 10_000) * sample_size.max(1) / 10;
    let mut b = Bencher {
        iters: iters.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{label:<48} time: {:>12}  ({} iters)", fmt_time(mean), b.iters);
}

/// Identifier of a parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (scales the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Run an unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (formatting no-op in this subset).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh harness with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
