//! Offline-compatible subset of the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the workspace uses crossbeam solely for
//! MPSC channels with a bounded `try_send`. The implementation delegates
//! to `std::sync::mpsc`, whose `Sender`/`SyncSender` are `Sync` on modern
//! rustc, so the fabric can share senders behind an `RwLock` exactly as it
//! does with upstream crossbeam.

pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TrySendError<T> {
        /// The channel is bounded and full.
        Full(T),
        /// The receiver has disconnected.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(t) => Tx::Unbounded(t.clone()),
                Tx::Bounded(t) => Tx::Bounded(t.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        tx: Tx<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let r = match &self.tx {
                Tx::Unbounded(t) => t.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(t) => t.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            };
            if r.is_ok() {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            r
        }

        /// Send without blocking; fails with [`TrySendError::Full`] when a
        /// bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let r = match &self.tx {
                Tx::Unbounded(t) => t
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(t) => t.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            };
            if r.is_ok() {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            r
        }

        /// Messages sent but not yet received (queue depth).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let r = self.rx.recv().map_err(|_| RecvError);
            if r.is_ok() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            r
        }

        /// Block until a message arrives, `timeout` elapses, or every
        /// sender disconnects.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let r = self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            });
            if r.is_ok() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            r
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let r = self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            });
            if r.is_ok() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            r
        }

        /// Messages sent but not yet received (queue depth).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterate until every sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx: Tx::Unbounded(tx),
                depth: Arc::clone(&depth),
            },
            Receiver { rx, depth },
        )
    }

    /// A channel holding at most `capacity` in-flight messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx: Tx::Bounded(tx),
                depth: Arc::clone(&depth),
            },
            Receiver { rx, depth },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            drop(rx);
            let (tx2, rx2) = bounded(4);
            drop(rx2);
            assert_eq!(tx2.try_send(9), Err(TrySendError::Disconnected(9)));
        }

        #[test]
        fn len_tracks_depth() {
            let (tx, rx) = unbounded();
            assert_eq!(tx.len(), 0);
            assert!(tx.is_empty());
            tx.send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.len(), 1);
            assert_eq!(rx.try_recv(), Ok(2));
            assert!(rx.is_empty());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(tx.len(), 0);
        }

        #[test]
        fn len_not_bumped_on_failed_send() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(tx.len(), 1);
            drop(rx);
            assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
            assert_eq!(tx.len(), 1);
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
