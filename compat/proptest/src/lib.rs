//! Offline-compatible subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] test macro, range and
//! `any::<T>()` strategies, `prop_map`, [`prop_oneof!`], tuple and
//! collection strategies, and a tiny `[class]{m,n}` regex string strategy.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case panics with the generated inputs
//!   visible in the assertion message rather than a minimized example.
//! - **Deterministic by construction.** Each test's RNG is seeded from a
//!   hash of the test function's name, so runs are reproducible without a
//!   `proptest-regressions` directory.
//! - Values are drawn uniformly (no edge-case biasing).

pub mod strategy {
    /// Deterministic splitmix64 generator used to drive all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, folded into a non-zero seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h | 1,
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Object-safe view of [`Strategy`], used by [`Union`] and
    /// [`BoxedStrategy`].
    pub trait DynStrategy<V> {
        /// Draw one value through the erased strategy.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Box<dyn DynStrategy<V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate_dyn(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Choice between several strategies with the same value type; built
    /// by [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate_dyn(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// Marker strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Always-finite doubles across a wide magnitude span.
            let mag = rng.next_f64() * 2.0 - 1.0;
            let exp = rng.below(60) as i32 - 30;
            mag * 2f64.powi(exp)
        }
    }

    impl Strategy for Any<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated strings debuggable.
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `&'static str` regex-style strategy: supports patterns of the form
    /// `[class]{m,n}` (char class with ranges and `\`-escapes, repeated a
    /// uniform length in `m..=n`). Any other pattern generates itself
    /// literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            match class[i] {
                '\\' if i + 1 < class.len() => {
                    chars.push(class[i + 1]);
                    i += 2;
                }
                lo if i + 2 < class.len() && class[i + 1] == '-' => {
                    let hi = class[i + 2];
                    for c in lo..=hi {
                        chars.push(c);
                    }
                    i += 3;
                }
                c => {
                    chars.push(c);
                    i += 1;
                }
            }
        }
        if chars.is_empty() {
            return None;
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let lo: usize = reps.0.trim().parse().ok()?;
        let hi: usize = reps.1.trim().parse().ok()?;
        (lo <= hi).then_some((chars, lo, hi))
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// Produce the default strategy for `T` (uniform, always finite for
    /// floats).
    pub fn any<T>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// Size specification accepted by [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by this subset.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...)` body runs
/// for `cases` generated inputs (from the optional
/// `#![proptest_config(...)]` header, default 256).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __proptest_rng =
                $crate::strategy::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __proptest_case in 0..__proptest_cfg.cases {
                let _ = __proptest_case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::DynStrategy<_>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 1u32..10, b in 0usize..3, x in -1e3f64..1e3) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((-1e3..1e3).contains(&x), "x={}", x);
        }

        #[test]
        fn vec_sizes_honoured(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            any::<bool>().prop_map(|b| b as u64 + 100),
        ]) {
            prop_assert!(v < 10u64 || v == 100u64 || v == 101u64);
        }

        #[test]
        fn string_pattern_subset(s in "[a-c0-1_\\-]{2,6}") {
            prop_assert!((2..=6).contains(&s.len()), "len={}", s.len());
            prop_assert!(s.chars().all(|c| "abc01_-".contains(c)), "s={}", s);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{Strategy, TestRng};
        let draw = |name: &str| {
            let mut rng = TestRng::deterministic(name);
            (0..8).map(|_| (0u32..1000).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw("t1"), draw("t1"));
        assert_ne!(draw("t1"), draw("t2"));
    }
}
