//! Offline-compatible subset of the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the `bytes` 1.x API it actually uses: [`Bytes`] (cheaply
//! cloneable shared buffers), [`BytesMut`] (append-only builder), and the
//! [`Buf`]/[`BufMut`] cursor traits with the little-endian accessors the
//! codec needs. Semantics match the upstream crate for this subset; only
//! the zero-copy internals differ (an `Arc<[u8]>` plus a range instead of
//! a refcounted vtable).

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copy `src` into a new shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Drop the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Freeze into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte source. All multi-byte accessors are
/// little-endian, matching the workspace codec.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable contiguous slice at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write cursor: appends to the end of the buffer. All multi-byte writers
/// are little-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_i64_le(-9);
        b.put_f64_le(2.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.slice(..2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn buf_for_byte_slice() {
        let data = vec![9u8, 1, 0, 0, 0];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.get_u8(), 9);
        assert_eq!(buf.get_u32_le(), 1);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }
}
