//! The M/D/1 model (§3.2.1) against an actual simulated queue: Eq. (2)'s
//! `E(L)` and the `d*`/`M` boundary must match what a discrete-event
//! M/D/1 queue really does.

use whale::sim::cost::mdone;
use whale::sim::{Engine, Scheduler, SimDuration, SimRng, SimTime, SimWorld};

/// A plain M/D/1 queue: Poisson arrivals, deterministic service.
struct Mdone {
    rng: SimRng,
    lambda: f64,
    service: SimDuration,
    queue: u64,
    busy: bool,
    horizon: SimTime,
    /// time-weighted queue length integral
    area: f64,
    last_change: SimTime,
    served: u64,
}

enum Ev {
    Arrive,
    Done,
}

impl Mdone {
    fn note(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_secs_f64();
        // Queue length counts waiting + in service, like Eq. (2)'s E(L).
        let l = self.queue + u64::from(self.busy);
        self.area += l as f64 * dt;
        self.last_change = now;
    }
}

impl SimWorld for Mdone {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrive => {
                self.note(now);
                if self.busy {
                    self.queue += 1;
                } else {
                    self.busy = true;
                    sched.after(self.service, Ev::Done);
                }
                let gap = SimDuration::from_secs_f64(self.rng.exp(self.lambda));
                if now + gap <= self.horizon {
                    sched.at(now + gap, Ev::Arrive);
                }
            }
            Ev::Done => {
                self.note(now);
                self.served += 1;
                if self.queue > 0 {
                    self.queue -= 1;
                    sched.after(self.service, Ev::Done);
                } else {
                    self.busy = false;
                }
            }
        }
    }
}

fn simulate_avg_queue(lambda: f64, service_secs: f64, secs: u64, seed: u64) -> f64 {
    let horizon = SimTime::from_secs(secs);
    let mut engine = Engine::new(Mdone {
        rng: SimRng::new(seed),
        lambda,
        service: SimDuration::from_secs_f64(service_secs),
        queue: 0,
        busy: false,
        horizon,
        area: 0.0,
        last_change: SimTime::ZERO,
        served: 0,
    });
    engine.scheduler().at(SimTime::ZERO, Ev::Arrive);
    engine.run_until(horizon + SimDuration::from_secs(5));
    let w = engine.world();
    w.area
        / horizon
            .as_secs_f64()
            .min(w.last_change.as_secs_f64().max(1e-9))
}

#[test]
fn eq2_average_queue_length_matches_simulation() {
    // ρ = 0.5 and ρ = 0.8: analytic E(L) vs a long simulated run.
    for (lambda, mu) in [(5_000.0, 10_000.0), (8_000.0, 10_000.0)] {
        let service = 1.0 / mu;
        let analytic = mdone::avg_queue_len(lambda, mu);
        let simulated = simulate_avg_queue(lambda, service, 60, 7);
        let err = (simulated - analytic).abs() / analytic;
        assert!(
            err < 0.10,
            "λ={lambda}: analytic={analytic:.3} simulated={simulated:.3} err={err:.3}"
        );
    }
}

#[test]
fn max_affordable_rate_is_the_stability_knee() {
    // Driving below M(d0) keeps the queue near E(L)<=Q; above it, the
    // queue blows up.
    let t_e = 10e-6;
    let d0 = 4;
    let q = 256;
    let m = mdone::max_affordable_rate(d0, t_e, q);
    let service = d0 as f64 * t_e;
    let below = simulate_avg_queue(m * 0.90, service, 40, 11);
    let above = simulate_avg_queue(m * 1.30, service, 40, 11);
    assert!(
        below <= q as f64,
        "below-M queue {below:.1} must fit in Q={q}"
    );
    assert!(
        above > q as f64,
        "above-M queue {above:.1} must exceed Q={q}"
    );
}

#[test]
fn d_star_is_the_largest_affordable_degree() {
    // Simulate at d* and at d*+2 for a fixed λ: d* keeps E(L) <= Q,
    // a larger degree does not (given λ is close to M(d*)).
    let t_e = 10e-6;
    let q = 128;
    let lambda = 20_000.0;
    let d = mdone::d_star(lambda, t_e, q);
    assert!(d >= 1);
    let ok = simulate_avg_queue(lambda, d as f64 * t_e, 40, 3);
    assert!(
        ok <= q as f64 * 1.2,
        "at d*, queue {ok:.1} ~ bounded by Q={q}"
    );
    let too_big = simulate_avg_queue(lambda, (d + 2) as f64 * t_e, 40, 3);
    assert!(
        too_big > ok,
        "higher degree must congest more: {too_big:.1} vs {ok:.1}"
    );
}

#[test]
fn eq1_service_rate_definition() {
    // Eq. (1): µ = 1/(d0 · t_e).
    let t_e = 8e-6;
    for d in [1u32, 4, 17] {
        let mu = mdone::service_rate(d, t_e);
        assert!((mu - 1.0 / (d as f64 * t_e)).abs() < 1e-6, "d={d}");
    }
}

#[test]
fn eq2_closed_form_and_divergence() {
    // At ρ = 1/2: E(L) = ρ²/(2(1−ρ)) + ρ = 0.25 + 0.5.
    let mu = 10_000.0;
    assert!((mdone::avg_queue_len(5_000.0, mu) - 0.75).abs() < 1e-12);
    // The queue diverges at and beyond saturation.
    assert!(mdone::avg_queue_len(mu, mu).is_infinite());
    assert!(mdone::avg_queue_len(2.0 * mu, mu).is_infinite());
    // And is empty with no arrivals.
    assert_eq!(mdone::avg_queue_len(0.0, mu), 0.0);
}

#[test]
fn eq4_capacity_factor_matches_naive_form() {
    // The stable form 2Q/(Q+1+√(Q²+1)) must equal Q+1−√(Q²+1) ∈ (0,1].
    for q in [1usize, 2, 128, 2_048, 1 << 20] {
        let f = mdone::capacity_factor(q);
        let qf = q as f64;
        let naive = qf + 1.0 - (qf * qf + 1.0).sqrt();
        assert!((f - naive).abs() < 1e-9, "q={q}: {f} vs {naive}");
        assert!(f > 0.0 && f <= 1.0, "q={q}: {f}");
    }
}

#[test]
fn d_star_boundary_brackets_the_affordable_rate() {
    // Eqs (3)/(5) consistency at the boundary: for λ just below M(d) the
    // largest affordable degree is exactly d; just above, it drops.
    let t_e = 8e-6;
    let q = 2_048;
    for d in [1u32, 2, 3, 7, 32, 100] {
        let m = mdone::max_affordable_rate(d, t_e, q);
        assert_eq!(mdone::d_star(m * 0.999, t_e, q), d, "just below M({d})");
        assert_eq!(
            mdone::d_star(m * 1.001, t_e, q),
            (d - 1).max(1),
            "just above M({d})"
        );
        // Eq. (3) ⇒ Eq. (2): at the affordable rate the queue fits in Q.
        let mu = mdone::service_rate(d, t_e);
        assert!(mdone::avg_queue_len(m * 0.999, mu) <= q as f64, "d={d}");
    }
    // Degenerate ends: no load affords any degree; extreme load forces a
    // chain (d* never reaches 0).
    assert_eq!(mdone::d_star(0.0, t_e, q), u32::MAX);
    assert_eq!(mdone::d_star(-1.0, t_e, q), u32::MAX);
    assert_eq!(mdone::d_star(1e12, t_e, q), 1);
}

#[test]
fn d_star_monotone_in_lambda_and_queue() {
    // Theorem 1: faster streams force (weakly) smaller out-degrees;
    // larger transfer queues afford (weakly) larger ones.
    let t_e = 8e-6;
    let mut prev = u32::MAX;
    for lambda in [1.0, 10.0, 1_000.0, 10_000.0, 50_000.0, 1e6] {
        let d = mdone::d_star(lambda, t_e, 2_048);
        assert!(d <= prev, "λ={lambda}: {d} > {prev}");
        prev = d;
    }
    assert!(mdone::d_star(10_000.0, t_e, 4_096) >= mdone::d_star(10_000.0, t_e, 64));
}

#[test]
fn theorem1_affordable_rate_halves_when_degree_doubles() {
    let t_e = 8e-6;
    let q = 512;
    let m2 = mdone::max_affordable_rate(2, t_e, q);
    let m4 = mdone::max_affordable_rate(4, t_e, q);
    assert!((m2 / m4 - 2.0).abs() < 1e-9);
    // And the simulation agrees qualitatively: at rate m4*1.05, degree 2
    // is stable while degree 4 is not.
    let rate = m4 * 1.05;
    let q2 = simulate_avg_queue(rate, 2.0 * t_e, 30, 5);
    let q4 = simulate_avg_queue(rate, 4.0 * t_e, 30, 5);
    assert!(q2 < 10.0, "degree 2 stable: {q2:.2}");
    assert!(q4 > q as f64, "degree 4 unstable: {q4:.1}");
}
