//! Both evaluation applications on the live runtime: application-level
//! results must be identical regardless of the communication mechanism —
//! worker-oriented communication is a transport optimization, not a
//! semantics change.

use whale::apps::{ride_hailing, stock_exchange};
use whale::dsps::{run_topology, CommMode, FabricKind, LiveConfig, RunReport};
use whale::workloads::{DidiConfig, NasdaqConfig};

fn run_ride(comm: CommMode, zero_copy: bool, machines: u32) -> RunReport {
    run_topology(
        ride_hailing::topology(12),
        ride_hailing::operators(99, DidiConfig::default(), 3_000, 400),
        LiveConfig {
            machines,
            comm_mode: comm,
            zero_copy,
            multicast_d_star: None,
            dedicated_senders: false,
            fabric: FabricKind::PerSend,
            ..LiveConfig::default()
        },
    )
}

fn run_stock(comm: CommMode, zero_copy: bool, machines: u32) -> RunReport {
    run_topology(
        stock_exchange::topology(12),
        stock_exchange::operators(17, NasdaqConfig::default(), 6_000),
        LiveConfig {
            machines,
            comm_mode: comm,
            zero_copy,
            multicast_d_star: None,
            dedicated_senders: false,
            fabric: FabricKind::PerSend,
            ..LiveConfig::default()
        },
    )
}

/// The candidate stage (index 3) is fed by `MatchingBolt`, which emits
/// only when a driver location arrived before the request — a race
/// between the two independent spout threads, exactly like the
/// stock-exchange trade stage. Input-driven stages are compared exactly;
/// candidates get a plausibility band (every instance answering every
/// request is the ceiling).
fn assert_candidates_plausible(r: &RunReport) {
    assert!(r.executed[3] > 0, "no candidates at all");
    assert!(r.executed[3] <= 400 * 12, "more candidates than possible");
}

#[test]
fn ride_hailing_results_identical_across_comm_modes() {
    let io = run_ride(CommMode::InstanceOriented, false, 4);
    let wo = run_ride(CommMode::WorkerOriented, true, 4);
    assert_eq!(io.executed[..3], wo.executed[..3], "tuple counts must match");
    assert_eq!(io.spout_emitted, wo.spout_emitted);
    // The broadcast stage: 400 requests × 12 instances + 3000 locations.
    assert_eq!(wo.executed[2], 3_000 + 400 * 12);
    assert_candidates_plausible(&io);
    assert_candidates_plausible(&wo);
    // But the mechanisms differ drastically in cost.
    assert!(io.serializations > wo.serializations);
    assert!(io.fabric_messages > wo.fabric_messages);
}

#[test]
fn ride_hailing_results_stable_across_cluster_sizes() {
    let base = run_ride(CommMode::WorkerOriented, true, 2);
    for machines in [4, 8] {
        let r = run_ride(CommMode::WorkerOriented, true, machines);
        assert_eq!(r.executed[2], base.executed[2], "machines={machines}");
        assert_candidates_plausible(&r);
    }
}

#[test]
fn stock_exchange_results_identical_across_comm_modes() {
    let io = run_stock(CommMode::InstanceOriented, false, 4);
    let wo = run_stock(CommMode::WorkerOriented, true, 4);
    // Input-driven stages are exactly equal. Trade counts (stage 4) vary
    // with thread interleaving — a buy racing ahead of its matching sell
    // finds an empty book, exactly as in real Storm — so only their
    // plausibility is checked.
    assert_eq!(io.executed[..4], wo.executed[..4]);
    assert!(io.executed[4] > 0 && wo.executed[4] > 0);
}

#[test]
fn stock_exchange_stage_counts_are_input_driven() {
    let a = run_stock(CommMode::WorkerOriented, true, 4);
    let b = run_stock(CommMode::WorkerOriented, true, 4);
    // Deterministic generator → identical pipeline inputs.
    assert_eq!(a.spout_emitted, b.spout_emitted);
    assert_eq!(a.executed[..4], b.executed[..4]);
    // Matching executions = key-grouped valid sells + broadcast valid buys × 12.
    assert!(a.executed[3] > a.executed[1]);
}

#[test]
fn ride_hailing_results_identical_over_ring_fabric() {
    // The batched ring transport is a delivery optimization; application
    // results must match the synchronous per-send path exactly.
    let per_send = run_ride(CommMode::WorkerOriented, true, 4);
    let ring = run_topology(
        ride_hailing::topology(12),
        ride_hailing::operators(99, DidiConfig::default(), 3_000, 400),
        LiveConfig {
            machines: 4,
            comm_mode: CommMode::WorkerOriented,
            zero_copy: true,
            multicast_d_star: None,
            dedicated_senders: false,
            fabric: FabricKind::Ring(whale::dsps::RingConfig::default()),
            ..LiveConfig::default()
        },
    );
    assert_eq!(ring.executed[..3], per_send.executed[..3]);
    assert_candidates_plausible(&ring);
    assert_eq!(ring.spout_emitted, per_send.spout_emitted);
    assert!(ring.batches_flushed > 0, "ring path must batch");
    assert!(ring.outcome.is_clean());
}

#[test]
fn broadcast_fanout_scales_with_parallelism() {
    for p in [4u32, 8, 24] {
        let r = run_topology(
            ride_hailing::topology(p),
            ride_hailing::operators(5, DidiConfig::default(), 500, 100),
            LiveConfig {
                machines: 4,
                comm_mode: CommMode::WorkerOriented,
                zero_copy: true,
                multicast_d_star: None,
                dedicated_senders: false,
                fabric: FabricKind::PerSend,
                ..LiveConfig::default()
            },
        );
        assert_eq!(r.executed[2], 500 + 100 * p as u64, "p={p}");
    }
}
