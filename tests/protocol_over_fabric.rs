//! Cross-crate integration: the dynamic-switching protocol (§3.4) running
//! over the live fabric — a coordinator thread and one agent thread per
//! destination exchanging real messages, as the deployed system would.

use std::sync::Arc;
use whale::multicast::{
    build_nonblocking, AckOutcome, InstanceAgent, Node, ProtocolMsg, SwitchCoordinator,
};
use whale::net::{EndpointId, LiveFabric};
use whale::sim::{SimDuration, SimTime};

/// Wire format for protocol messages over the in-process fabric: the
/// payload is a bincode-free, hand-rolled frame (tag + fields); for this
/// test we keep it simple and ship the `ProtocolMsg` through a channel of
/// boxed values attached to fabric signaling frames.
///
/// The fabric carries opaque bytes, so we index into a shared message
/// table: each fabric frame is the 8-byte table index.
struct MsgTable {
    slots: parking_lot::Mutex<Vec<ProtocolMsg>>,
}

impl MsgTable {
    fn new() -> Self {
        MsgTable {
            slots: parking_lot::Mutex::new(Vec::new()),
        }
    }
    fn put(&self, m: ProtocolMsg) -> u64 {
        let mut slots = self.slots.lock();
        slots.push(m);
        (slots.len() - 1) as u64
    }
    fn get(&self, i: u64) -> ProtocolMsg {
        self.slots.lock()[i as usize].clone()
    }
}

#[test]
fn switch_protocol_converges_over_the_live_fabric() {
    let n = 20u32;
    let tree = build_nonblocking(n, 5);
    let fabric = Arc::new(LiveFabric::new());
    let table = Arc::new(MsgTable::new());

    // Endpoint 0 = coordinator (source); endpoints 1..=n = agents.
    let coord_rx = fabric.register(EndpointId(0));
    let mut agent_rx = Vec::new();
    for i in 1..=n {
        agent_rx.push(fabric.register(EndpointId(i)));
    }

    // Agent threads: apply protocol messages, ACK when owed, forward the
    // final replica back for verification, exit on an empty frame.
    let mut agent_handles = Vec::new();
    for (idx, rx) in agent_rx.into_iter().enumerate() {
        let fabric = Arc::clone(&fabric);
        let table = Arc::clone(&table);
        let tree = tree.clone();
        agent_handles.push(std::thread::spawn(move || {
            let me = Node::Dest(idx as u32);
            let mut agent = InstanceAgent::new(me, tree);
            while let Ok(msg) = rx.recv() {
                if msg.payload.is_empty() {
                    break; // shutdown frame
                }
                let i = u64::from_le_bytes(msg.payload.bytes().try_into().unwrap());
                if let Some(ack) = agent.on_message(table.get(i)) {
                    let j = table.put(ack);
                    fabric
                        .send_copied(EndpointId(idx as u32 + 1), EndpointId(0), &j.to_le_bytes())
                        .unwrap();
                }
            }
            agent.replica().clone()
        }));
    }

    // Coordinator: plan the switch, send the outbox, collect ACKs.
    let (mut coord, outbox) = SwitchCoordinator::start(SimTime::ZERO, &tree, 2);
    let send_to = |node: Node, m: ProtocolMsg| {
        let Node::Dest(i) = node else { return };
        let j = table.put(m);
        fabric
            .send_copied(EndpointId(0), EndpointId(i + 1), &j.to_le_bytes())
            .unwrap();
    };
    for (dst, m) in outbox {
        send_to(dst, m);
    }
    // ACK collection with a simulated clock: each ACK "arrives" 10 µs
    // after the previous one.
    let mut now = SimTime::ZERO;
    let mut t_switch = None;
    while t_switch.is_none() {
        let msg = coord_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("acks must keep arriving");
        let i = u64::from_le_bytes(msg.payload.bytes().try_into().unwrap());
        let ProtocolMsg::Ack { from } = table.get(i) else {
            panic!("coordinator only receives acks");
        };
        now += SimDuration::from_micros(10);
        if let AckOutcome::Completed { t_switch: t } = coord.on_ack(from, now) {
            t_switch = Some(t);
        }
    }
    assert!(t_switch.unwrap() > SimDuration::ZERO);

    // Deferred structure updates, then shutdown frames.
    for (dst, m) in coord.deferred_notifications() {
        send_to(dst, m);
    }
    for i in 1..=n {
        fabric
            .send_copied(EndpointId(0), EndpointId(i), &[])
            .unwrap();
    }

    // Every agent's replica converged to the coordinator's tree.
    for h in agent_handles {
        let replica = h.join().expect("agent thread panicked");
        assert_eq!(&replica, coord.new_tree());
    }
    coord.new_tree().validate(2).unwrap();
}
