//! Cross-crate integration: the dynamic-switching protocol (§3.4) running
//! over the live fabric — a coordinator thread and one agent thread per
//! destination exchanging real encoded frames, as the deployed system
//! would. The same driver runs over both transports: the synchronous
//! per-send `LiveFabric` and the batched `RingFabric` (stream slicing on
//! the live path). The converged structures must be identical; only the
//! delivery schedule differs.

use std::sync::Arc;
use whale::multicast::{build_nonblocking, run_switch_over_fabric, SwitchDriverReport};
use whale::net::{FabricKind, FabricPath, LiveFabric, RingConfig};
use whale::sim::SimDuration;

fn drive(fabric: Arc<dyn FabricPath>, n: u32, initial_d: u32, new_d: u32) -> SwitchDriverReport {
    let tree = build_nonblocking(n, initial_d);
    let report = run_switch_over_fabric(fabric, &tree, new_d).expect("switch must complete");
    report.new_tree.validate(new_d).expect("planned tree valid");
    report
}

#[test]
fn switch_protocol_converges_over_the_live_fabric() {
    let fabric: Arc<dyn FabricPath> = Arc::new(LiveFabric::new());
    let report = drive(fabric, 20, 5, 2);
    assert!(report.moves > 0, "scale-down must move edges");
    assert!(report.t_switch > SimDuration::ZERO);
    assert!(report.acks_received >= report.moves as u64);
}

#[test]
fn switch_protocol_converges_over_the_ring_fabric() {
    let mut instance = FabricKind::Ring(RingConfig::default()).build();
    let report = drive(Arc::clone(&instance.fabric), 20, 5, 2);
    assert!(report.moves > 0);
    assert!(report.t_switch > SimDuration::ZERO);
    // Ring delivery is batched: the flusher must have drained at least one
    // doorbell-triggered batch to carry the protocol traffic.
    assert!(instance.fabric.flushed_batches() > 0, "ring path must batch");
    assert_eq!(instance.fabric.send_errors(), 0);
    instance.shutdown();
}

#[test]
fn both_transports_agree_on_the_switched_structure() {
    let live: Arc<dyn FabricPath> = Arc::new(LiveFabric::new());
    let a = drive(live, 30, 6, 2);
    let mut instance = FabricKind::Ring(RingConfig::default()).build();
    let b = drive(Arc::clone(&instance.fabric), 30, 6, 2);
    instance.shutdown();
    // The plan is deterministic and the transport is invisible to it.
    assert_eq!(a.new_tree, b.new_tree);
    assert_eq!(a.moves, b.moves);
    assert_eq!(a.t_switch, b.t_switch, "ACK clock is virtual");
}

#[test]
fn coordinator_metrics_exported_after_the_switch() {
    let fabric: Arc<dyn FabricPath> = Arc::new(LiveFabric::new());
    let report = drive(fabric, 16, 4, 2);
    let m = &report.metrics;
    assert_eq!(m.gauge("multicast.switch.pending_acks"), Some(0.0));
    assert_eq!(m.counter("multicast.switch.moves"), Some(report.moves as u64));
    assert_eq!(
        m.gauge("multicast.switch.t_switch_secs"),
        Some(report.t_switch.as_secs_f64())
    );
    assert_eq!(
        m.counter("multicast.switch.frames_sent"),
        Some(report.frames_sent)
    );
    assert_eq!(
        m.counter("multicast.switch.acks_received"),
        Some(report.acks_received)
    );
}

#[test]
fn scale_up_also_converges_over_both_transports() {
    let live: Arc<dyn FabricPath> = Arc::new(LiveFabric::new());
    let a = drive(live, 24, 2, 5);
    let mut instance = FabricKind::Ring(RingConfig::default()).build();
    let b = drive(Arc::clone(&instance.fabric), 24, 2, 5);
    instance.shutdown();
    assert_eq!(a.new_tree, b.new_tree);
}
