//! Property test of the XOR acker: for any randomly shaped tuple tree,
//! acking every execution exactly once — in any order — completes the
//! tree, and omitting any single execution leaves it pending.

use proptest::prelude::*;
use whale::dsps::{AckBuilder, Acker, TreeState};
use whale::sim::{SimDuration, SimRng, SimTime};

/// Build a random tuple tree: returns the spout's initial ledger and the
/// per-execution XOR values (one per node in the tree).
fn random_tree(seed: u64, fanouts: &[u8]) -> (u64, Vec<u64>) {
    let mut rng = SimRng::new(seed);
    // The spout emits one root tuple with one anchor.
    let root_anchor = rng.next_u64().max(1);
    let mut frontier = vec![root_anchor];
    let mut executions = Vec::new();
    for &fanout in fanouts {
        let Some(consumed) = frontier.pop() else { break };
        let mut b = AckBuilder::consuming(consumed, rng.fork(consumed));
        for _ in 0..fanout {
            frontier.push(b.emit());
        }
        executions.push(b.finish());
    }
    // Remaining frontier tuples are consumed by leaves that emit nothing.
    for consumed in frontier {
        let b = AckBuilder::consuming(consumed, rng.fork(consumed));
        executions.push(b.finish());
    }
    (root_anchor, executions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_order_completes_exactly_at_the_last_ack(
        seed in any::<u64>(),
        fanouts in proptest::collection::vec(0u8..4, 0..12),
        shuffle_seed in any::<u64>(),
    ) {
        let (root_anchor, mut executions) = random_tree(seed, &fanouts);
        SimRng::new(shuffle_seed).shuffle(&mut executions);

        let mut acker = Acker::new(SimDuration::from_secs(60));
        acker.init(1, root_anchor, SimTime::ZERO);
        for (i, &x) in executions.iter().enumerate() {
            let state = acker.ack(1, x);
            if i + 1 == executions.len() {
                prop_assert_eq!(state, TreeState::Acked, "last ack completes");
            } else {
                // XOR collisions across distinct random anchors are
                // astronomically unlikely; a premature zero would be a bug.
                prop_assert_eq!(state, TreeState::Pending, "i={}", i);
            }
        }
        prop_assert_eq!(acker.pending(), 0);
    }

    #[test]
    fn dropping_one_execution_leaves_tree_pending(
        seed in any::<u64>(),
        fanouts in proptest::collection::vec(0u8..4, 1..10),
        drop_pick in any::<u64>(),
    ) {
        let (root_anchor, executions) = random_tree(seed, &fanouts);
        let drop_idx = (drop_pick % executions.len() as u64) as usize;

        let mut acker = Acker::new(SimDuration::from_secs(60));
        acker.init(1, root_anchor, SimTime::ZERO);
        for (i, &x) in executions.iter().enumerate() {
            if i == drop_idx {
                continue;
            }
            prop_assert_eq!(acker.ack(1, x), TreeState::Pending);
        }
        prop_assert_eq!(acker.pending(), 1);
        // The timeout eventually fails it for replay.
        let failed = acker.expire(SimTime::from_secs(120));
        prop_assert_eq!(failed, vec![1]);
    }
}
