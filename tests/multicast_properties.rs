//! Property-based tests of the core multicast machinery: tree invariants
//! under construction and switching, and agreement between the L(t)
//! closed form and the relay simulator.

use proptest::prelude::*;
use whale::multicast::{
    build_binomial, build_nonblocking, build_sequential, capability, plan_switch, Node, RelaySim,
    Structure,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nonblocking_tree_always_valid(n in 1u32..600, d in 1u32..12) {
        let tree = build_nonblocking(n, d);
        prop_assert!(tree.validate(d).is_ok());
        prop_assert_eq!(tree.reachable_count(), n);
    }

    #[test]
    fn source_degree_never_exceeds_binomial_bound(n in 1u32..600, d in 1u32..12) {
        let tree = build_nonblocking(n, d);
        let bound = whale::multicast::binomial_source_degree(n);
        prop_assert!(tree.out_degree(Node::Source) <= d.min(bound));
    }

    #[test]
    fn switching_preserves_connectivity_and_degree(
        n in 2u32..300,
        d_initial in 1u32..10,
        d_new in 1u32..10,
    ) {
        let tree = build_nonblocking(n, d_initial);
        let (switched, plan) = plan_switch(&tree, d_new);
        prop_assert!(switched.validate(d_new.max(d_initial.min(d_new))).is_ok()
            || switched.validate(d_new).is_ok(),
            "switched tree invalid");
        prop_assert_eq!(switched.reachable_count(), n);
        // Scale-down must actually enforce the new cap.
        if d_new < d_initial {
            prop_assert!(switched.validate(d_new).is_ok());
        }
        // Untouched nodes keep their parent.
        let moved: std::collections::HashSet<u32> = plan
            .moves
            .iter()
            .filter_map(|m| match m.node {
                Node::Dest(i) => Some(i),
                Node::Source => None,
            })
            .collect();
        for i in 0..n {
            if !moved.contains(&i) {
                prop_assert_eq!(tree.parent(i), switched.parent(i));
            }
        }
    }

    #[test]
    fn capability_monotone_and_bounded(d in 1u32..10, t in 0u32..16) {
        // L(t) is non-decreasing in t and never exceeds 2^t.
        prop_assert!(capability(d, t) <= capability(d, t + 1));
        prop_assert!(capability(d, t) <= 1u64 << t.min(63));
    }

    #[test]
    fn relay_sim_agrees_with_capability(d in 1u32..6, t in 1u32..8) {
        let n = 700;
        let tree = build_nonblocking(n, d);
        let sched = RelaySim::new(tree).multicast(0);
        let reached = 1 + sched
            .arrivals
            .iter()
            .filter(|&&a| a != u64::MAX && a <= t as u64)
            .count() as u64;
        prop_assert_eq!(reached, capability(d, t).min(n as u64 + 1));
    }

    #[test]
    fn every_destination_eventually_receives(n in 1u32..300, d in 1u32..8) {
        let tree = build_nonblocking(n, d);
        let sched = RelaySim::new(tree).multicast(0);
        prop_assert!(sched.arrivals.iter().all(|&a| a != u64::MAX));
        prop_assert_eq!(sched.arrivals.len(), n as usize);
    }

    #[test]
    fn sequential_completes_in_n_binomial_in_log(n in 1u32..400) {
        let seq = RelaySim::new(build_sequential(n)).multicast(0);
        prop_assert_eq!(seq.complete, n as u64);
        let bin = RelaySim::new(build_binomial(n)).multicast(0);
        let bound = whale::multicast::binomial_source_degree(n) as u64;
        prop_assert!(bin.complete <= bound, "bin={} bound={bound}", bin.complete);
    }

    #[test]
    fn source_done_equals_out_degree(n in 1u32..400, d in 1u32..8) {
        // Theorem 1's premise: the source is busy exactly d0 units per
        // tuple.
        for s in [
            Structure::Sequential,
            Structure::Binomial,
            Structure::NonBlocking { d_star: d },
        ] {
            let tree = s.build(n);
            let d0 = tree.out_degree(Node::Source) as u64;
            let sched = RelaySim::new(tree).multicast(0);
            prop_assert_eq!(sched.source_done, d0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn controller_degree_always_in_bounds(
        initial_d in 1u32..12,
        samples in proptest::collection::vec((0u32..200_000, 0usize..2_048, 0usize..2_048), 1..40),
    ) {
        use whale::multicast::{AdjustController, ControllerConfig, MonitorReport};
        use whale::sim::SimTime;
        let config = ControllerConfig::for_queue(2_048, 480);
        let mut c = AdjustController::new(config, initial_d);
        for (i, (lambda, prev, cur)) in samples.into_iter().enumerate() {
            let report = MonitorReport {
                at: SimTime::from_millis(100 * (i as u64 + 1)),
                lambda: lambda as f64,
                t_e_secs: 8e-6,
                queue_len: cur,
                prev_queue_len: prev,
                links: Default::default(),
            };
            let before = c.current_degree();
            let decision = c.decide(&report);
            let after = c.current_degree();
            prop_assert!((1..=config.max_degree).contains(&after));
            match decision {
                whale::multicast::Decision::ScaleDown { d_star } => {
                    prop_assert!(d_star < before);
                    prop_assert_eq!(d_star, after);
                }
                whale::multicast::Decision::ScaleUp { d_star } => {
                    prop_assert!(d_star > before);
                    prop_assert_eq!(d_star, after);
                }
                whale::multicast::Decision::Hold => prop_assert_eq!(before, after),
            }
        }
    }
}

#[test]
fn theorem2_multicast_capability_positively_correlated_with_degree() {
    // Exhaustive over the relevant range rather than sampled.
    for t in 1..14u32 {
        for d in 1..9u32 {
            assert!(capability(d, t) <= capability(d + 1, t), "d={d} t={t}");
        }
    }
}

#[test]
fn switching_round_trip_returns_to_valid_start_shape() {
    let tree = build_nonblocking(100, 5);
    let (down, _) = plan_switch(&tree, 2);
    down.validate(2).unwrap();
    let (up, _) = plan_switch(&down, 5);
    up.validate(5).unwrap();
    assert_eq!(up.reachable_count(), 100);
    // Multicast completion after the round trip is no worse than the
    // degraded tree's.
    let t_down = RelaySim::new(down).multicast(0).complete;
    let t_up = RelaySim::new(up).multicast(0).complete;
    assert!(t_up <= t_down);
}
