//! Trace round-trips through real files on disk, and the public prelude /
//! sweep API exercised the way a downstream user would.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use whale::prelude::*;
use whale::workloads::trace;

#[test]
fn traces_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join(format!("whale-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let loc_path = dir.join("locations.csv");
    {
        let mut w = BufWriter::new(File::create(&loc_path).unwrap());
        trace::export_locations(&mut w, 11, DidiConfig::default(), 1_000).unwrap();
    }
    let locs = trace::import_locations(BufReader::new(File::open(&loc_path).unwrap())).unwrap();
    assert_eq!(locs.len(), 1_000);

    let stock_path = dir.join("stocks.csv");
    {
        let mut w = BufWriter::new(File::create(&stock_path).unwrap());
        trace::export_stocks(&mut w, 13, NasdaqConfig::default(), 2_000).unwrap();
    }
    let stocks = trace::import_stocks(BufReader::new(File::open(&stock_path).unwrap())).unwrap();
    assert_eq!(stocks.len(), 2_000);
    // Zipf head: the hottest symbol appears many times in 2k records.
    let hot = stocks
        .iter()
        .filter(|r| r.symbol == stocks[0].symbol)
        .count();
    let _ = hot;

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prelude_covers_the_quickstart_flow() {
    // Build a topology, run the engine, and pick a structure — all from
    // the prelude alone.
    let mut b = TopologyBuilder::new();
    b.spout("requests", 1, Schema::new(vec!["k"]))
        .bolt("match", 8, Schema::new(vec!["k"]))
        .connect("requests", "match", Grouping::All);
    let topology = b.build().unwrap();
    assert_eq!(topology.total_tasks(), 9);

    let report = run(EngineConfig::paper(SystemMode::WhaleFull, 64, 10));
    assert_eq!(report.completed, 10);

    let choice = recommend(480, 50_000.0, 8e-6, 2_048);
    assert!(matches!(choice, Structure::NonBlocking { .. }));
}

#[test]
fn sweep_grid_from_the_public_api() {
    let mut base = EngineConfig::paper(SystemMode::Storm, 64, 0);
    base.drive = Drive::Saturate { tuples: 8 };
    let grid = sweep_grid(
        &base,
        &[SystemMode::Storm, SystemMode::WhaleFull],
        &[64, 96],
    );
    assert_eq!(grid.len(), 4);
    // Whale beats Storm at every parallelism in the grid.
    for chunk in grid.chunks(2) {
        assert!(chunk[1].report.throughput > chunk[0].report.throughput);
    }
}
