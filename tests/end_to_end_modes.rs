//! Cross-crate integration: the experiment engine must reproduce the
//! paper's qualitative results across all five systems.

use whale::core::{run, Drive, EngineConfig, SystemMode};
use whale::sim::{CpuCategory, SimTime};
use whale::workloads::RatePlan;

fn saturate(mode: SystemMode, p: u32, tuples: u64) -> whale::core::EngineReport {
    run(EngineConfig::paper(mode, p, tuples))
}

#[test]
fn fig13_shape_throughput_vs_parallelism() {
    // Storm and RDMA-Storm decline with parallelism; Whale rises.
    let ps = [120u32, 240, 480];
    let storm: Vec<f64> = ps
        .iter()
        .map(|&p| saturate(SystemMode::Storm, p, 40).throughput)
        .collect();
    let whale: Vec<f64> = ps
        .iter()
        .map(|&p| saturate(SystemMode::WhaleFull, p, 40).throughput)
        .collect();
    assert!(
        storm[0] > storm[1] && storm[1] > storm[2],
        "storm={storm:?}"
    );
    assert!(
        whale[0] < whale[1] && whale[1] < whale[2],
        "whale={whale:?}"
    );
    // Crossover: Whale already wins at the lowest parallelism.
    assert!(whale[0] > storm[0]);
}

#[test]
fn fig14_shape_latency_vs_parallelism() {
    // Storm's latency grows with parallelism; Whale's shrinks.
    let storm_120 = saturate(SystemMode::Storm, 120, 30).mean_latency;
    let storm_480 = saturate(SystemMode::Storm, 480, 30).mean_latency;
    assert!(storm_480 > storm_120);
    let whale_120 = saturate(SystemMode::WhaleFull, 120, 30).mean_latency;
    let whale_480 = saturate(SystemMode::WhaleFull, 480, 30).mean_latency;
    assert!(whale_480 < whale_120);
}

#[test]
fn fig2c_upstream_overload_downstream_idle() {
    // Storm at high parallelism: the upstream instance saturates while
    // downstream instances stay under-utilized.
    let r = saturate(SystemMode::Storm, 480, 40);
    assert!(r.source_cpu > 0.9, "source={}", r.source_cpu);
    assert!(r.downstream_cpu < 0.2, "downstream={}", r.downstream_cpu);
    // Whale reverses this: the source is no longer the hot spot.
    let w = saturate(SystemMode::WhaleFull, 480, 40);
    assert!(w.source_cpu < w.downstream_cpu + 0.7);
    assert!(w.downstream_cpu > r.downstream_cpu);
}

#[test]
fn fig2d_breakdown_serialization_and_packets() {
    let r = saturate(SystemMode::Storm, 480, 30);
    let get = |cat: CpuCategory| {
        r.source_breakdown
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|&(_, s)| s)
            .unwrap_or(0.0)
    };
    let ser = get(CpuCategory::Serialization);
    let pkt = get(CpuCategory::PacketProcessing);
    assert!(ser + pkt > 0.95, "ser={ser:.2} pkt={pkt:.2}");
    assert!(pkt > ser, "kernel packet processing dominates on TCP");
    // RDMA-Storm: packet processing replaced by cheaper WR posts, so
    // serialization's share grows (Fig 26's RDMA-Storm bar).
    let r2 = saturate(SystemMode::RdmaStorm, 480, 30);
    let ser2 = r2
        .source_breakdown
        .iter()
        .find(|(c, _)| *c == CpuCategory::Serialization)
        .map(|&(_, s)| s)
        .unwrap();
    assert!(ser2 > ser, "ser share must grow when TCP cost is removed");
}

#[test]
fn fig25_26_communication_time() {
    let storm = saturate(SystemMode::Storm, 480, 30);
    let whale = saturate(SystemMode::WhaleFull, 480, 30);
    // Whale cuts per-tuple source communication time by >90% (paper: 96%).
    let reduction =
        1.0 - whale.comm_time_per_tuple.as_secs_f64() / storm.comm_time_per_tuple.as_secs_f64();
    assert!(reduction > 0.9, "comm time reduction = {reduction:.3}");
    // And serialization time per tuple collapses (49.5 ms → <1 ms scale).
    assert!(whale.ser_time_per_tuple.as_nanos() * 50 < storm.ser_time_per_tuple.as_nanos());
}

#[test]
fn fig33_34_rack_insensitivity() {
    // Whale's throughput/latency barely move as the cluster is split
    // into 1..5 racks.
    let mut tputs = Vec::new();
    for racks in [1u32, 3, 5] {
        let mut cfg = EngineConfig::paper(SystemMode::WhaleFull, 480, 40);
        cfg.cluster = whale::net::ClusterSpec::new(30, racks, 16);
        let r = run(cfg);
        tputs.push(r.throughput);
    }
    let min = tputs.iter().cloned().fold(f64::MAX, f64::min);
    let max = tputs.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.05, "rack sensitivity too high: {tputs:?}");
}

#[test]
fn dynamic_rate_run_is_deterministic() {
    let make = || {
        let mut cfg = EngineConfig::paper(SystemMode::WhaleFull, 120, 0);
        cfg.drive = Drive::Rate {
            plan: RatePlan::Poisson(500.0),
            horizon: SimTime::from_secs(2),
        };
        run(cfg)
    };
    let a = make();
    let b = make();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.switches, b.switches);
}

#[test]
fn tuple_conservation_under_rate_drive() {
    // Every generated tuple is either completed or dropped by the end of
    // a drained run: nothing is silently lost in the pipeline.
    for mode in [
        SystemMode::Storm,
        SystemMode::WhaleWocRdma,
        SystemMode::WhaleFull,
    ] {
        let mut cfg = EngineConfig::paper(mode, 120, 0);
        cfg.drive = Drive::Rate {
            plan: RatePlan::Poisson(300.0),
            horizon: SimTime::from_secs(1),
        };
        let r = run(cfg);
        // ~300 arrivals in 1s; all must complete (rate far below capacity
        // for these modes at parallelism 120).
        assert_eq!(r.dropped, 0, "{mode:?}");
        assert!(
            (250..400).contains(&(r.completed as i64)),
            "{mode:?}: {}",
            r.completed
        );
    }
}

#[test]
fn saturate_drive_completes_exactly_the_requested_tuples() {
    for mode in SystemMode::ALL {
        let r = saturate(mode, 64, 37);
        assert_eq!(r.completed, 37, "{mode:?}");
        assert_eq!(r.dropped, 0, "{mode:?}");
    }
}

#[test]
fn queue_overflow_causes_stream_input_loss() {
    // Definition 4: once the transfer queue is full, arrivals are lost.
    let mut cfg = EngineConfig::paper(SystemMode::Storm, 480, 0);
    cfg.drive = Drive::Rate {
        plan: RatePlan::Poisson(5_000.0), // far beyond Storm's ~30/s capacity
        horizon: SimTime::from_secs(3),
    };
    let r = run(cfg);
    assert!(r.dropped > 1_000, "dropped={}", r.dropped);
    // The queue fills within the first half second and stays full.
    assert!(r.mean_load_factor > 0.85, "load={}", r.mean_load_factor);
}
