//! Property-based tests of the wire codec: arbitrary tuples round-trip
//! through both message formats, and size accounting is exact.

use proptest::prelude::*;
use std::sync::Arc;
use whale::dsps::{InstanceMessage, TaskId, Tuple, Value, WorkerMessage};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        // Finite floats only: NaN breaks PartialEq round-trip checks.
        (-1e12f64..1e12).prop_map(Value::F64),
        "[a-zA-Z0-9_\\-]{0,40}".prop_map(|s| Value::str(s.as_str())),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|b| Value::Bytes(Arc::from(b.as_slice()))),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (any::<u64>(), proptest::collection::vec(arb_value(), 0..8))
        .prop_map(|(id, values)| Tuple::with_id(id, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tuple_roundtrip(t in arb_tuple()) {
        let bytes = whale::dsps::codec::encode_tuple(&t);
        prop_assert_eq!(bytes.len(), t.payload_bytes());
        let mut buf = bytes.clone();
        let back = whale::dsps::codec::decode_tuple(&mut buf).unwrap();
        prop_assert_eq!(back, t);
        prop_assert_eq!(buf.len(), 0);
    }

    #[test]
    fn instance_message_roundtrip(t in arb_tuple(), src in 0u32..10_000, dst in 0u32..10_000) {
        let m = InstanceMessage { src: TaskId(src), dst: TaskId(dst), tuple: t };
        let bytes = m.encode();
        prop_assert_eq!(bytes.len(), m.wire_bytes());
        let back = InstanceMessage::decode(bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn worker_message_roundtrip(
        t in arb_tuple(),
        src in 0u32..10_000,
        dsts in proptest::collection::vec(0u32..10_000, 0..64),
    ) {
        let m = WorkerMessage {
            src: TaskId(src),
            dst_ids: dsts.into_iter().map(TaskId).collect(),
            tuple: t,
        };
        let bytes = m.encode();
        prop_assert_eq!(bytes.len(), m.wire_bytes());
        let back = WorkerMessage::decode(bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn truncation_never_panics(t in arb_tuple(), cut_fraction in 0.0f64..1.0) {
        let bytes = whale::dsps::codec::encode_tuple(&t);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            let mut buf = bytes.slice(..cut);
            // Either errors cleanly or (never) succeeds — must not panic.
            let _ = whale::dsps::codec::decode_tuple(&mut buf);
        }
    }

    #[test]
    fn worker_message_amortizes_vs_instance_messages(
        t in arb_tuple(),
        n in 2usize..64,
    ) {
        let dsts: Vec<TaskId> = (0..n as u32).map(TaskId).collect();
        let wm = WorkerMessage { src: TaskId(0), dst_ids: dsts, tuple: t.clone() };
        let per_instance: usize = (0..n)
            .map(|i| InstanceMessage { src: TaskId(0), dst: TaskId(i as u32), tuple: t.clone() }.wire_bytes())
            .sum();
        // One worker message is always smaller than n instance messages
        // (4 bytes per id vs a whole data-item copy each).
        prop_assert!(wm.wire_bytes() < per_instance);
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let buf = bytes::Bytes::from(bytes);
        let _ = InstanceMessage::decode(buf.clone());
        let _ = WorkerMessage::decode(buf.clone());
        let mut b = buf;
        let _ = whale::dsps::codec::decode_tuple(&mut b);
    }
}

/// Deterministic regression tests for the codec's edge tuples: the
/// empty batch, the single-field tuple, and maximum-size values.
mod edge_tuples {
    use super::*;
    use whale::dsps::codec;

    fn roundtrip(t: &Tuple) -> Tuple {
        let bytes = codec::encode_tuple(t);
        assert_eq!(bytes.len(), t.payload_bytes());
        let mut buf = bytes;
        let back = codec::decode_tuple(&mut buf).unwrap();
        assert_eq!(buf.len(), 0, "decoder must consume everything");
        back
    }

    #[test]
    fn empty_tuple_roundtrips() {
        let t = Tuple::with_id(0, vec![]);
        assert_eq!(roundtrip(&t), t);
        let t = Tuple::with_id(u64::MAX, vec![]);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn empty_batch_worker_message_roundtrips() {
        // A worker message with no destination tasks (the empty batch).
        let m = WorkerMessage {
            src: TaskId(0),
            dst_ids: vec![],
            tuple: Tuple::with_id(1, vec![Value::I64(7)]),
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_bytes());
        assert_eq!(WorkerMessage::decode(bytes).unwrap(), m);
    }

    #[test]
    fn single_field_tuples_roundtrip() {
        for v in [
            Value::I64(i64::MIN),
            Value::I64(i64::MAX),
            Value::F64(f64::MIN_POSITIVE),
            Value::F64(-0.0),
            Value::str(""),
            Value::Bytes(std::sync::Arc::from(&[][..])),
            Value::Bool(false),
        ] {
            let t = Tuple::with_id(3, vec![v]);
            assert_eq!(roundtrip(&t), t);
        }
    }

    #[test]
    fn max_size_values_roundtrip() {
        // A 1 MiB blob and a 1 MiB string: far past any batching
        // threshold, exercising the u32 length prefixes.
        let blob = vec![0xA5u8; 1 << 20];
        let text = "x".repeat(1 << 20);
        let t = Tuple::with_id(9, vec![
            Value::Bytes(std::sync::Arc::from(blob.as_slice())),
            Value::str(text.as_str()),
        ]);
        assert_eq!(roundtrip(&t), t);
        // And through both message formats.
        let im = InstanceMessage { src: TaskId(1), dst: TaskId(2), tuple: t.clone() };
        assert_eq!(InstanceMessage::decode(im.encode()).unwrap(), im);
        let wm = WorkerMessage { src: TaskId(1), dst_ids: vec![TaskId(2)], tuple: t };
        assert_eq!(WorkerMessage::decode(wm.encode()).unwrap(), wm);
    }
}
