//! Property-based tests of the wire codec: arbitrary tuples round-trip
//! through both message formats, and size accounting is exact.

use proptest::prelude::*;
use std::sync::Arc;
use whale::dsps::{InstanceMessage, TaskId, Tuple, Value, WorkerMessage};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::I64),
        // Finite floats only: NaN breaks PartialEq round-trip checks.
        (-1e12f64..1e12).prop_map(Value::F64),
        "[a-zA-Z0-9_\\-]{0,40}".prop_map(|s| Value::str(s.as_str())),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|b| Value::Bytes(Arc::from(b.as_slice()))),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (any::<u64>(), proptest::collection::vec(arb_value(), 0..8))
        .prop_map(|(id, values)| Tuple::with_id(id, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tuple_roundtrip(t in arb_tuple()) {
        let bytes = whale::dsps::codec::encode_tuple(&t);
        prop_assert_eq!(bytes.len(), t.payload_bytes());
        let mut buf = bytes.clone();
        let back = whale::dsps::codec::decode_tuple(&mut buf).unwrap();
        prop_assert_eq!(back, t);
        prop_assert_eq!(buf.len(), 0);
    }

    #[test]
    fn instance_message_roundtrip(t in arb_tuple(), src in 0u32..10_000, dst in 0u32..10_000) {
        let m = InstanceMessage { src: TaskId(src), dst: TaskId(dst), tuple: t };
        let bytes = m.encode();
        prop_assert_eq!(bytes.len(), m.wire_bytes());
        let back = InstanceMessage::decode(bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn worker_message_roundtrip(
        t in arb_tuple(),
        src in 0u32..10_000,
        dsts in proptest::collection::vec(0u32..10_000, 0..64),
    ) {
        let m = WorkerMessage {
            src: TaskId(src),
            dst_ids: dsts.into_iter().map(TaskId).collect(),
            tuple: t,
        };
        let bytes = m.encode();
        prop_assert_eq!(bytes.len(), m.wire_bytes());
        let back = WorkerMessage::decode(bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn truncation_never_panics(t in arb_tuple(), cut_fraction in 0.0f64..1.0) {
        let bytes = whale::dsps::codec::encode_tuple(&t);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            let mut buf = bytes.slice(..cut);
            // Either errors cleanly or (never) succeeds — must not panic.
            let _ = whale::dsps::codec::decode_tuple(&mut buf);
        }
    }

    #[test]
    fn worker_message_amortizes_vs_instance_messages(
        t in arb_tuple(),
        n in 2usize..64,
    ) {
        let dsts: Vec<TaskId> = (0..n as u32).map(TaskId).collect();
        let wm = WorkerMessage { src: TaskId(0), dst_ids: dsts, tuple: t.clone() };
        let per_instance: usize = (0..n)
            .map(|i| InstanceMessage { src: TaskId(0), dst: TaskId(i as u32), tuple: t.clone() }.wire_bytes())
            .sum();
        // One worker message is always smaller than n instance messages
        // (4 bytes per id vs a whole data-item copy each).
        prop_assert!(wm.wire_bytes() < per_instance);
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let buf = bytes::Bytes::from(bytes);
        let _ = InstanceMessage::decode(buf.clone());
        let _ = WorkerMessage::decode(buf.clone());
        let mut b = buf;
        let _ = whale::dsps::codec::decode_tuple(&mut b);
    }
}
